//! The distributed-VM simulator: vCPUs, devices, client, migration.
//!
//! [`VmBuilder`] assembles a VM (profile, placement, RAM, devices, guest
//! programs, optional external client) into a [`VmSim`] — an engine plus a
//! [`VmWorld`]. The world executes guest programs op by op:
//!
//! * compute bursts share pCPUs under processor sharing ([`sim_core::pscpu`]),
//!   which is what makes overcommitment slow;
//! * page touches run through the DSM fault executor ([`crate::memory`]),
//!   which is what makes distribution slow;
//! * I/O runs through delegated VirtIO devices, crossing the fabric when the
//!   submitting vCPU is not on the device's home node;
//! * vCPU migration pauses a vCPU, transfers its state, and resumes it on
//!   another node — the mobility mechanism GiantVM lacks;
//! * an optional fault plan crashes nodes and degrades links mid-run, and
//!   an optional heartbeat failure detector ([`crate::failure`]) detects
//!   the crash and drives live recovery (DSM quarantine + checkpoint
//!   restore, or a proactive drain when the failure was predicted).

use std::collections::{BTreeSet, HashMap, VecDeque};

use comm::{Fabric, LinkProfile, Message, MsgClass, NodeId};
use dsm::{Access, PageClass, PageId};
use guest::memory::Region;
use sim_core::fault::FaultPlan;
use sim_core::pscpu::PsCpu;
use sim_core::rng::DetRng;
use sim_core::time::SimTime;
use sim_core::trace::{TraceEvent, Tracer};
use sim_core::units::{Bandwidth, ByteSize};
use sim_core::{Ctx, Engine, World};
use virtio::device::{BlkRequest, DeviceConfig, VirtioBlk, VirtioConsole, VirtioNet};
use virtio::plan::{BackendWork, IoPlan};
use virtio::{QueueId, VcpuId};

use crate::checkpoint;
use crate::elastic::MemoryConfig;
use crate::failure::FailureConfig;
use crate::memory::VmMemory;
use crate::profile::HypervisorProfile;
use crate::program::{GuestMsg, Op, ProgCtx, Program};
use crate::stats::VmStats;

/// Maximum zero-latency ops processed per engine event (fairness bound).
const OPS_PER_EVENT: u32 = 256;

/// Latency of a same-node IPI.
const LOCAL_IPI: SimTime = SimTime::from_nanos(200);

/// Socket-buffer chunk size for guest-local streams (16 KiB, four pages).
const SOCKET_CHUNK: u64 = 16 * 1024;

/// Same-node task wakeup (futex/scheduler, no hypervisor involvement).
const LOCAL_WAKEUP: SimTime = SimTime::from_micros(3);

/// Transport-level retransmission delay after the fabric reports a drop
/// on a path whose caller cannot afford to lose the message (client
/// traffic, completion interrupts, guest-local wakeups).
const FABRIC_RETX: SimTime = SimTime::from_micros(500);

/// Throughput of tmpfs (page-cache memcpy) on the testbed.
fn tmpfs_bandwidth() -> Bandwidth {
    Bandwidth::gbit_per_sec(80.0)
}

/// Throughput of the SATA SSD in the testbed (paper: ~500 MB/s).
fn ssd_bandwidth() -> Bandwidth {
    Bandwidth::mb_per_sec(500.0)
}

/// Where one vCPU runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    /// Host machine.
    pub node: NodeId,
    /// pCPU index on that machine.
    pub pcpu: u32,
}

impl Placement {
    /// Convenience constructor.
    pub fn new(node: u32, pcpu: u32) -> Self {
        Placement {
            node: NodeId::new(node),
            pcpu,
        }
    }
}

/// One request injection from the external client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientSend {
    /// Connection identifier (latency is tracked per in-flight conn).
    pub conn: u64,
    /// Request payload size.
    pub bytes: ByteSize,
    /// The vCPU the request is dispatched to (e.g. the NGINX worker).
    pub target: VcpuId,
}

/// External load generator (ApacheBench-style closed loop, FaaS client...).
pub trait ClientModel {
    /// Requests to inject at simulation start.
    fn start(&mut self, now: SimTime) -> Vec<ClientSend>;

    /// Called when a response arrives; returns follow-up requests.
    fn on_response(&mut self, now: SimTime, conn: u64, bytes: u64) -> Vec<ClientSend>;

    /// True when the client has no more work outstanding or planned.
    fn is_done(&self) -> bool;
}

/// Client attachment configuration.
pub struct ClientConfig {
    /// The node the client machine occupies in the fabric.
    pub node: NodeId,
    /// Link between the client and the VM's NIC-home node (both ways).
    pub link: LinkProfile,
    /// The load-generation behaviour.
    pub model: Box<dyn ClientModel>,
}

/// A non-fatal execution error surfaced by the VM instead of a panic.
///
/// Errors accumulate in [`VmStats::errors`]; the guest degrades (lost
/// packet, failed I/O) rather than aborting the simulation, which is what
/// lets fault-injection runs ride out dead devices and lossy links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// A `NetSend` op ran on a VM without a net device.
    NoNetDevice {
        /// The issuing vCPU.
        vcpu: VcpuId,
    },
    /// A `BlkIo` op ran on a VM without a block device.
    NoBlkDevice {
        /// The issuing vCPU.
        vcpu: VcpuId,
    },
    /// A device kick could not reach the device's home node (the guest
    /// sees a failed I/O).
    DeviceUnreachable {
        /// The submitting vCPU.
        vcpu: VcpuId,
        /// True for the net device, false for blk.
        is_net: bool,
    },
    /// An IPI was lost: the target slice is dead or the fabric's bounded
    /// retries were exhausted.
    IpiLost {
        /// Sending node.
        src: NodeId,
        /// Target vCPU.
        vcpu: VcpuId,
    },
    /// A `FleetSend` op ran on a VM outside a fleet (no outbox attached);
    /// the message vanishes (EIO).
    NoFleet {
        /// The issuing vCPU.
        vcpu: VcpuId,
    },
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::NoNetDevice { vcpu } => {
                write!(f, "vCPU{} issued NetSend without a net device", vcpu.0)
            }
            VmError::NoBlkDevice { vcpu } => {
                write!(f, "vCPU{} issued BlkIo without a block device", vcpu.0)
            }
            VmError::DeviceUnreachable { vcpu, is_net } => {
                let dev = if *is_net { "net" } else { "blk" };
                write!(f, "vCPU{} could not reach the {dev} device home", vcpu.0)
            }
            VmError::IpiLost { src, vcpu } => {
                write!(f, "IPI from node {} to vCPU{} was lost", src.0, vcpu.0)
            }
            VmError::NoFleet { vcpu } => {
                write!(f, "vCPU{} issued FleetSend outside a fleet", vcpu.0)
            }
        }
    }
}

/// What a vCPU is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VcpuStatus {
    /// Step scheduled or in progress.
    Ready,
    /// Running a compute burst on its pCPU.
    Computing,
    /// Waiting for a network message.
    BlockedNet,
    /// Waiting for a guest-local message.
    BlockedLocal,
    /// Waiting for any message (network or local).
    BlockedAny,
    /// Waiting for an IPI.
    BlockedIpi,
    /// Waiting on a barrier.
    BlockedBarrier,
    /// Waiting for a block-I/O completion.
    BlockedIo,
    /// Sleeping until a timer fires.
    Sleeping,
    /// Mid-migration.
    Migrating,
    /// Halted by a node crash; awaiting checkpoint restore.
    Failed,
    /// Program finished.
    Done,
}

/// What to do after a charged CPU burst completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AfterCpu {
    /// Continue the program.
    Continue,
    /// Deliver a guest-local message, then continue.
    DeliverLocal {
        /// Receiving vCPU.
        to: VcpuId,
        /// The message.
        msg: GuestMsg,
    },
}

struct VcpuState {
    node: NodeId,
    pcpu: u32,
    /// Slot of `(node, pcpu)` in the world's pCPU slab; refreshed whenever
    /// the placement changes so the compute hot path never hashes.
    pcpu_slot: u32,
    program: Box<dyn Program>,
    status: VcpuStatus,
    net_inbox: VecDeque<GuestMsg>,
    local_inbox: VecDeque<GuestMsg>,
    pending_ipis: u32,
    delivered: Option<GuestMsg>,
    after_cpu: AfterCpu,
    /// Op to re-execute after a transient queue-full backoff.
    retry_op: Option<Op>,
    /// Remaining compute stashed while migrating.
    stashed_work: Option<SimTime>,
    /// Pre-migration status to restore at MigrationDone.
    resume_status: VcpuStatus,
    /// A step/wake event fired while the vCPU was migrating.
    missed_step: bool,
    /// A deferred CPU charge fired while migrating.
    missed_charge: Option<SimTime>,
    /// When the pending `VcpuRestore` is due. A cascading recovery (the
    /// restore target itself dying mid-restore) re-places the vCPU and
    /// re-arms this; the superseded restore event sees a mismatched time
    /// and is ignored.
    restore_at: Option<SimTime>,
    finish: Option<SimTime>,
    rng: DetRng,
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: BTreeSet<u32>,
}

/// Runtime state of the heartbeat failure detector (monitor = node 0).
#[derive(Debug)]
struct FailureState {
    cfg: FailureConfig,
    /// Consecutive missed probes per node.
    misses: Vec<u32>,
    /// Nodes already declared dead (no further probing).
    suspected: Vec<bool>,
    /// Where each node's recovery landed (None = not yet recovered).
    /// Usually `cfg.restore_to`; differs when the preferred target was
    /// dead or partitioned and recovery fell back to another node.
    restored_to: Vec<Option<NodeId>>,
    /// Scripted crash time per node (detection-latency accounting and
    /// the probing horizon).
    crash_at: Vec<Option<SimTime>>,
    /// Latest scripted disturbance (crash or partition heal); probing
    /// stops once every scripted crash has been detected and `now` is
    /// past this point.
    last_disturbance: SimTime,
}

impl FailureState {
    fn new(cfg: FailureConfig, nodes: usize, plan: Option<&FaultPlan>) -> Self {
        let mut crash_at = vec![None; nodes];
        let mut last_disturbance = SimTime::ZERO;
        if let Some(plan) = plan {
            for c in plan.crashes() {
                if let Some(slot) = crash_at.get_mut(c.node as usize) {
                    *slot = Some(c.at);
                }
            }
            // Partitions extend the probing horizon past their heal so a
            // cut-off node is still being probed (and declared) while the
            // window is open.
            last_disturbance = plan.last_disturbance();
        }
        FailureState {
            cfg,
            misses: vec![0; nodes],
            suspected: vec![false; nodes],
            restored_to: vec![None; nodes],
            crash_at,
            last_disturbance,
        }
    }

    /// True while the detector still has scripted disturbances to catch.
    fn probing_needed(&self, now: SimTime) -> bool {
        now <= self.last_disturbance
            || self
                .crash_at
                .iter()
                .zip(&self.suspected)
                .any(|(c, s)| c.is_some() && !s)
    }
}

/// Simulation events.
#[derive(Debug)]
pub enum Event {
    /// Kick off all vCPUs and the client.
    Start,
    /// Advance a vCPU's program.
    VcpuStep(VcpuId),
    /// A pCPU completion prediction expires.
    CpuDone {
        /// Slot of the pCPU in the world's pCPU slab.
        slot: u32,
        /// Prediction epoch (stale epochs are ignored).
        epoch: u64,
    },
    /// Charge a CPU burst to a vCPU (deferred so pCPU timelines stay
    /// monotonic after synchronous fault latencies).
    ChargeCpu {
        /// Target vCPU.
        vcpu: VcpuId,
        /// Reference-core work.
        work: SimTime,
    },
    /// An IPI reaches its target vCPU.
    IpiDeliver {
        /// Target vCPU.
        vcpu: VcpuId,
    },
    /// A guest-local message reaches its target vCPU.
    LocalDeliver {
        /// Target vCPU.
        vcpu: VcpuId,
        /// The message.
        msg: GuestMsg,
    },
    /// A device processes a submitted I/O plan (runs on the device node).
    DevProcess {
        /// Submitting vCPU.
        vcpu: VcpuId,
        /// Queue the request occupies.
        queue: QueueId,
        /// True for the net device, false for blk.
        is_net: bool,
        /// The plan to execute.
        plan: Box<IoPlan>,
        /// Connection id for client-bound transmissions.
        conn: Option<u64>,
    },
    /// An I/O completion interrupt reaches the submitting vCPU.
    IoComplete {
        /// Submitting vCPU.
        vcpu: VcpuId,
        /// Queue to release.
        queue: QueueId,
        /// True for the net device.
        is_net: bool,
        /// Used-ring touches performed by the guest on completion.
        guest_touches: Vec<virtio::plan::PageTouch>,
    },
    /// A request from the external client reaches the NIC-home node.
    ClientRxArrive {
        /// Connection id.
        conn: u64,
        /// Request size.
        bytes: u64,
        /// Target vCPU.
        target: VcpuId,
    },
    /// An RX payload/interrupt reaches the target vCPU's slice.
    NetRxDeliver {
        /// Target vCPU.
        vcpu: VcpuId,
        /// The message to enqueue.
        msg: GuestMsg,
        /// RX queue to release.
        queue: QueueId,
        /// Guest-side touches to perform on delivery.
        guest_touches: Vec<virtio::plan::PageTouch>,
    },
    /// A response reaches the external client.
    ClientDeliver {
        /// Connection id.
        conn: u64,
        /// Response size.
        bytes: u64,
    },
    /// A sleeping vCPU's timer fires.
    WakeVcpu(VcpuId),
    /// Periodic guest timer tick on a vCPU (scheduler tick, timekeeping).
    GuestTick {
        /// The ticking vCPU.
        vcpu: VcpuId,
    },
    /// A vCPU migration completes on the destination.
    MigrationDone {
        /// The migrating vCPU.
        vcpu: VcpuId,
        /// Destination placement.
        to: Placement,
    },
    /// A scripted node crash from the fault plan fires.
    NodeFail {
        /// The crashing node.
        node: NodeId,
    },
    /// The monitor slice's periodic heartbeat probe round.
    Heartbeat,
    /// Hardware monitoring predicts `node` will fail: proactively drain it.
    PredictFailure {
        /// The suspect node.
        node: NodeId,
    },
    /// Recovery of a declared-dead node's slice begins.
    RecoverNode {
        /// The dead node.
        node: NodeId,
    },
    /// A restored vCPU resumes on the recovery node.
    VcpuRestore {
        /// The vCPU to resume.
        vcpu: VcpuId,
    },
    /// A scripted network partition from the fault plan opens.
    PartitionBegin {
        /// Index of the window in the plan's partition list.
        idx: usize,
    },
    /// A scripted network partition heals.
    PartitionEnd {
        /// Index of the window in the plan's partition list.
        idx: usize,
    },
    /// A cross-tenant fleet message reaches its target vCPU. Injected by
    /// the fleet engine (`crate::fleet`) after the window-barrier merge;
    /// never scheduled by the world itself.
    FleetDeliver {
        /// Target vCPU.
        vcpu: VcpuId,
        /// The message to enqueue (`conn` is the sender's global tenant
        /// id, `bytes` the payload size).
        msg: GuestMsg,
    },
}

/// A cross-tenant message staged on a world's fleet outbox by
/// [`Op::FleetSend`]; the fleet engine drains these at each window
/// barrier, maps `src_vcpu` back to its global tenant id, and routes the
/// message to the destination shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetOutMsg {
    /// Virtual time the send was issued.
    pub depart: SimTime,
    /// The sending vCPU (within this world).
    pub src_vcpu: VcpuId,
    /// Global destination tenant id.
    pub dst: u32,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Opaque application tag (kept for traces and audit).
    pub tag: u64,
}

/// The simulated world of one (possibly aggregate) VM.
pub struct VmWorld {
    profile: HypervisorProfile,
    /// The inter-node fabric (plus client link).
    pub fabric: Fabric,
    /// Guest memory.
    pub mem: VmMemory,
    /// Physical CPUs, slab-indexed; `pcpu_slots` maps `(node, pcpu)` to a
    /// slot and `pcpu_keys` maps back. Slots are stable for the lifetime of
    /// the world, so vCPUs and queued `CpuDone` events can carry them and
    /// the per-event hot path indexes a `Vec` instead of hashing a key.
    pcpus: Vec<PsCpu>,
    pcpu_keys: Vec<(NodeId, u32)>,
    pcpu_slots: HashMap<(NodeId, u32), u32>,
    /// Reusable buffer for completed task ids (one allocation per run, not
    /// one per completion event).
    done_scratch: Vec<u64>,
    /// Number of vCPUs in a terminal state (`Done`, or `Failed` with no
    /// failure detector to revive them). Maintained at every status
    /// transition into a terminal state so the per-event `finished()`
    /// check is O(1) instead of a scan over all vCPUs.
    terminal_vcpus: usize,
    vcpus: Vec<VcpuState>,
    net: Option<VirtioNet>,
    blk: Option<VirtioBlk>,
    console: VirtioConsole,
    rx_buffers: Option<Region>,
    rx_cursor: u64,
    client: Option<ClientConfig>,
    client_pending: HashMap<u64, SimTime>,
    barriers: HashMap<u32, BarrierState>,
    timer_interval: Option<SimTime>,
    /// Heartbeat failure detector (None = no detector attached).
    failure: Option<FailureState>,
    /// Crash time per node, set when the scripted crash fires.
    crashed: Vec<Option<SimTime>>,
    tracer: Tracer,
    /// Cross-tenant messages staged by [`Op::FleetSend`] since the last
    /// window barrier. `None` outside a fleet (sends then vanish as EIO).
    fleet_outbox: Option<Vec<FleetOutMsg>>,
    /// Measurement output.
    pub stats: VmStats,
}

/// Stable trace id for a pCPU: packs `(node, pcpu)` so every physical core
/// in the cluster gets a distinct stream in the audit.
fn cpu_trace_id(node: NodeId, pcpu: u32) -> u32 {
    node.0 * 256 + pcpu
}

impl VmWorld {
    /// Number of vCPUs.
    pub fn vcpu_count(&self) -> usize {
        self.vcpus.len()
    }

    /// Current placement of a vCPU.
    pub fn placement_of(&self, vcpu: VcpuId) -> Placement {
        let v = &self.vcpus[vcpu.index()];
        Placement {
            node: v.node,
            pcpu: v.pcpu,
        }
    }

    /// True when every guest program has finished and the client (if any)
    /// is done.
    ///
    /// With a failure detector attached, crashed (`Failed`) vCPUs are
    /// *not* terminal — the detector will restore them, so the run keeps
    /// going until they finish. Without one there is no recovery path and
    /// `Failed` counts as terminal.
    pub fn finished(&self) -> bool {
        debug_assert_eq!(self.terminal_vcpus, {
            let terminal = |v: &VcpuState| {
                v.status == VcpuStatus::Done
                    || (self.failure.is_none() && v.status == VcpuStatus::Failed)
            };
            self.vcpus.iter().filter(|v| terminal(v)).count()
        });
        self.terminal_vcpus == self.vcpus.len()
            && self.client.as_ref().is_none_or(|c| c.model.is_done())
    }

    /// Crash time of `node`, if its scripted crash has fired.
    pub fn crash_time(&self, node: NodeId) -> Option<SimTime> {
        self.crashed.get(node.index()).copied().flatten()
    }

    /// Non-fatal errors surfaced so far (lost IPIs, unreachable devices).
    pub fn errors(&self) -> &[VmError] {
        &self.stats.errors
    }

    /// The hypervisor profile in force.
    pub fn profile(&self) -> &HypervisorProfile {
        &self.profile
    }

    /// Console output meter (the PTY worker lives on the bootstrap slice).
    pub fn console_out(&self) -> sim_core::stats::Meter {
        self.console.out
    }

    /// True when the external client (if any) has completed its load.
    pub fn client_done(&self) -> bool {
        self.client.as_ref().is_none_or(|c| c.model.is_done())
    }

    /// Attaches a trace sink to every instrumented component of the world:
    /// the fabric, the DSM directory, and all pCPUs (including those lazily
    /// created by later migrations).
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.fabric.attach_tracer(tracer.clone());
        self.mem.dsm.attach_tracer(tracer.clone());
        for (slot, cpu) in self.pcpus.iter_mut().enumerate() {
            let (node, pcpu) = self.pcpu_keys[slot];
            cpu.attach_tracer(tracer.clone(), cpu_trace_id(node, pcpu));
        }
        self.tracer = tracer;
    }

    /// Copies the memory-elasticity counters into [`VmStats`] (no-op when
    /// elasticity is off).
    pub(crate) fn sync_elastic_stats(&mut self) {
        if let Some(c) = self.mem.reclaim_counters() {
            self.stats.pressure_stalls = c.pressure_stalls;
            self.stats.pages_evicted = c.pages_evicted;
            self.stats.pages_ballooned = c.pages_ballooned;
            self.stats.pages_deflated = c.pages_deflated;
            self.stats.pages_swapped = c.pages_swapped;
            self.stats.reclaim_latency = c.reclaim_latency;
        }
    }

    /// Attaches a fleet outbox: from here on [`Op::FleetSend`] stages
    /// messages for the window-barrier exchange instead of erroring.
    pub fn enable_fleet(&mut self) {
        self.fleet_outbox = Some(Vec::new());
    }

    /// Drains the messages staged since the last window barrier, in issue
    /// order. Empty when no fleet outbox is attached.
    pub fn drain_fleet_outbox(&mut self) -> Vec<FleetOutMsg> {
        match self.fleet_outbox.as_mut() {
            Some(ob) => std::mem::take(ob),
            None => Vec::new(),
        }
    }

    /// Slot of `(node, pcpu)`, creating an idle un-loaded pCPU if absent.
    fn alloc_pcpu(&mut self, node: NodeId, pcpu: u32) -> u32 {
        if let Some(&slot) = self.pcpu_slots.get(&(node, pcpu)) {
            return slot;
        }
        let slot = self.pcpus.len() as u32;
        let mut cpu = PsCpu::new(1.0);
        cpu.attach_tracer(self.tracer.clone(), cpu_trace_id(node, pcpu));
        self.pcpus.push(cpu);
        self.pcpu_keys.push((node, pcpu));
        self.pcpu_slots.insert((node, pcpu), slot);
        slot
    }

    /// Schedules the (new) completion prediction for a pCPU.
    #[inline]
    fn reschedule_cpu(&mut self, ctx: &mut Ctx<'_, Event>, slot: u32) {
        if let Some(c) = self.pcpus[slot as usize].next_completion() {
            ctx.schedule_at(
                c.at,
                Event::CpuDone {
                    slot,
                    epoch: c.epoch,
                },
            );
        }
    }

    /// Advances a vCPU's program until it blocks, computes, or exhausts the
    /// per-event op budget.
    fn step_vcpu(&mut self, ctx: &mut Ctx<'_, Event>, vcpu: VcpuId) {
        let mut budget = OPS_PER_EVENT;
        loop {
            {
                let v = &self.vcpus[vcpu.index()];
                if v.status != VcpuStatus::Ready {
                    return;
                }
            }
            if budget == 0 {
                ctx.schedule_now(Event::VcpuStep(vcpu));
                return;
            }
            budget -= 1;
            let retried = self.vcpus[vcpu.index()].retry_op.take();
            let op = match retried {
                Some(op) => op,
                None => {
                    let v = &mut self.vcpus[vcpu.index()];
                    let mut cx = ProgCtx {
                        now: ctx.now,
                        vcpu,
                        rng: &mut v.rng,
                        delivered: v.delivered.take(),
                        inbox: &v.net_inbox,
                        alloc: &mut self.mem.alloc,
                    };
                    v.program.next(&mut cx)
                }
            };
            if !self.exec_op(ctx, vcpu, op) {
                return;
            }
        }
    }

    /// Executes one op; returns true if the program can continue in the
    /// same event.
    fn exec_op(&mut self, ctx: &mut Ctx<'_, Event>, vcpu: VcpuId, op: Op) -> bool {
        let now = ctx.now;
        let node = self.vcpus[vcpu.index()].node;
        match op {
            Op::Compute(work) => {
                self.begin_compute(ctx, vcpu, work, AfterCpu::Continue);
                false
            }
            Op::Touch { page, access } => {
                let t = self.mem.access(now, node, page, access, &mut self.fabric);
                self.continue_at(ctx, vcpu, t)
            }
            Op::TouchBatch(touches) => {
                let t = self.mem.access_batch(now, node, &touches, &mut self.fabric);
                self.continue_at(ctx, vcpu, t)
            }
            Op::Kernel(kop) => {
                let trace = self.mem.kernel.op_trace(vcpu.index(), kop);
                let t = self
                    .mem
                    .access_batch(now, node, &trace.touches, &mut self.fabric);
                if trace.tlb_shootdown {
                    self.broadcast_shootdown(now, vcpu);
                }
                if trace.cpu.is_zero() {
                    return self.continue_at(ctx, vcpu, t);
                }
                if t == now {
                    self.begin_compute(ctx, vcpu, trace.cpu, AfterCpu::Continue);
                } else {
                    ctx.schedule_at(
                        t,
                        Event::ChargeCpu {
                            vcpu,
                            work: trace.cpu,
                        },
                    );
                    self.vcpus[vcpu.index()].after_cpu = AfterCpu::Continue;
                }
                false
            }
            Op::NetSend {
                conn,
                bytes,
                payload,
            } => {
                let Some(net) = self.net.as_mut() else {
                    // Misconfigured guest: the packet vanishes (EIO) and
                    // the program keeps running.
                    self.stats.errors.push(VmError::NoNetDevice { vcpu });
                    self.stats.tx_drops += 1;
                    return true;
                };
                match net.plan_tx(vcpu, node, &payload, bytes) {
                    Ok((plan, queue)) => {
                        if !self.submit_io(ctx, vcpu, queue, true, plan, Some(conn)) {
                            self.stats.tx_drops += 1;
                        }
                        // Transmission is asynchronous for the guest.
                        true
                    }
                    Err(_) => {
                        // Ring full: socket backpressure. Stash the op and
                        // retry it once descriptors free up.
                        self.vcpus[vcpu.index()].retry_op = Some(Op::NetSend {
                            conn,
                            bytes,
                            payload,
                        });
                        ctx.schedule_in(SimTime::from_micros(50), Event::VcpuStep(vcpu));
                        self.stats.tx_drops += 1;
                        false
                    }
                }
            }
            Op::NetRecv => {
                let v = &mut self.vcpus[vcpu.index()];
                if let Some(msg) = v.net_inbox.pop_front() {
                    v.delivered = Some(msg);
                    true
                } else {
                    v.status = VcpuStatus::BlockedNet;
                    false
                }
            }
            Op::BlkIo {
                bytes,
                write,
                tmpfs,
                buffer,
            } => {
                let Some(blk) = self.blk.as_mut() else {
                    // Misconfigured guest: the request fails (EIO) and the
                    // program keeps running.
                    self.stats.errors.push(VmError::NoBlkDevice { vcpu });
                    return true;
                };
                let req = BlkRequest {
                    bytes,
                    write,
                    tmpfs,
                };
                match blk.plan_io(vcpu, node, req, &buffer) {
                    Ok((plan, queue)) => {
                        if self.submit_io(ctx, vcpu, queue, false, plan, None) {
                            self.vcpus[vcpu.index()].status = VcpuStatus::BlockedIo;
                            false
                        } else {
                            // The device home is unreachable: the guest
                            // sees EIO and continues instead of blocking
                            // on a completion that will never arrive.
                            true
                        }
                    }
                    Err(_) => {
                        // Queue full: block on the device and reissue the
                        // same request after the backoff.
                        self.vcpus[vcpu.index()].retry_op = Some(Op::BlkIo {
                            bytes,
                            write,
                            tmpfs,
                            buffer,
                        });
                        ctx.schedule_in(SimTime::from_micros(50), Event::VcpuStep(vcpu));
                        false
                    }
                }
            }
            Op::LocalSend { to, tag, bytes } => {
                let trace = self
                    .mem
                    .kernel
                    .op_trace(vcpu.index(), guest::KernelOp::LocalSocketSend(bytes));
                let mut t = self
                    .mem
                    .access_batch(now, node, &trace.touches, &mut self.fabric);
                // Large payloads stream through the bounded socket buffer:
                // each 16 KiB chunk fills the buffer, wakes the receiver,
                // and waits for it to drain — a wakeup ping-pong whose cost
                // dominates cross-node guest IPC (§7.2, Figure 12).
                let dst_node = self.vcpus[to.index()].node;
                let chunks = bytes / SOCKET_CHUNK;
                if chunks > 0 {
                    let wake = if dst_node == node {
                        LOCAL_WAKEUP
                    } else {
                        self.profile.remote_wakeup
                    };
                    let bufs = self.mem.kernel.socket_buffer_pages();
                    for cursor in 0..chunks as usize {
                        // Sender refills the (shared) socket buffer page...
                        let page = bufs[cursor % bufs.len()];
                        t = self
                            .mem
                            .access(t, node, page, Access::Write, &mut self.fabric);
                        t += wake;
                        // ...and the receiver drains it.
                        t = self
                            .mem
                            .access(t, dst_node, page, Access::Read, &mut self.fabric);
                        t += wake;
                    }
                }
                let msg = GuestMsg::Local {
                    from: vcpu,
                    tag,
                    bytes,
                };
                ctx.schedule_at(
                    t,
                    Event::ChargeCpu {
                        vcpu,
                        work: trace.cpu,
                    },
                );
                self.vcpus[vcpu.index()].after_cpu = AfterCpu::DeliverLocal { to, msg };
                false
            }
            Op::LocalRecv => {
                let v = &mut self.vcpus[vcpu.index()];
                if let Some(msg) = v.local_inbox.pop_front() {
                    v.delivered = Some(msg);
                    true
                } else {
                    v.status = VcpuStatus::BlockedLocal;
                    false
                }
            }
            Op::RecvAny => {
                let v = &mut self.vcpus[vcpu.index()];
                if let Some(msg) = v.local_inbox.pop_front() {
                    v.delivered = Some(msg);
                    true
                } else if let Some(msg) = v.net_inbox.pop_front() {
                    v.delivered = Some(msg);
                    true
                } else {
                    v.status = VcpuStatus::BlockedAny;
                    false
                }
            }
            Op::ConsoleWrite { bytes } => {
                // printk is asynchronous: the guest pays a syscall-ish cost
                // and the PTY worker on the bootstrap slice drains it.
                if let Some(m) = self.console.plan_write(node, ByteSize::bytes(bytes)) {
                    let _ = self.fabric.send(now, m);
                }
                let t = now + SimTime::from_micros(1);
                self.continue_at(ctx, vcpu, t)
            }
            Op::SendIpi(to) => {
                self.send_ipi(ctx, node, to);
                true
            }
            Op::WaitIpi => {
                let v = &mut self.vcpus[vcpu.index()];
                if v.pending_ipis > 0 {
                    v.pending_ipis -= 1;
                    true
                } else {
                    v.status = VcpuStatus::BlockedIpi;
                    false
                }
            }
            Op::Barrier { id, parties } => {
                let b = self.barriers.entry(id).or_default();
                b.arrived.insert(vcpu.0);
                if b.arrived.len() as u32 >= parties {
                    let woken: Vec<u32> = b.arrived.iter().copied().collect();
                    self.barriers.remove(&id);
                    for w in woken {
                        if w != vcpu.0 {
                            let peer = &mut self.vcpus[w as usize];
                            if peer.status == VcpuStatus::Migrating {
                                // The peer blocked on the barrier and was
                                // then migrated; replay the wake at
                                // MigrationDone.
                                debug_assert_eq!(peer.resume_status, VcpuStatus::BlockedBarrier);
                                peer.resume_status = VcpuStatus::Ready;
                                peer.missed_step = true;
                            } else {
                                debug_assert_eq!(peer.status, VcpuStatus::BlockedBarrier);
                                peer.status = VcpuStatus::Ready;
                                ctx.schedule_now(Event::VcpuStep(VcpuId::new(w)));
                            }
                        }
                    }
                    true
                } else {
                    self.vcpus[vcpu.index()].status = VcpuStatus::BlockedBarrier;
                    false
                }
            }
            Op::Sleep(d) => {
                self.vcpus[vcpu.index()].status = VcpuStatus::Sleeping;
                ctx.schedule_in(d, Event::WakeVcpu(vcpu));
                false
            }
            Op::FleetSend { dst, bytes, tag } => {
                match self.fleet_outbox.as_mut() {
                    Some(outbox) => outbox.push(FleetOutMsg {
                        depart: now,
                        src_vcpu: vcpu,
                        dst,
                        bytes,
                        tag,
                    }),
                    None => {
                        // Outside a fleet the message vanishes (EIO) and
                        // the program keeps running.
                        self.stats.errors.push(VmError::NoFleet { vcpu });
                        self.stats.tx_drops += 1;
                    }
                }
                // Fire-and-forget: the guest pays a syscall-ish doorbell
                // cost; network latency is charged by the fleet engine's
                // ingress line at the window barrier.
                let t = now + SimTime::from_micros(1);
                self.continue_at(ctx, vcpu, t)
            }
            Op::Observe { value_ns } => {
                self.stats.samples[vcpu.index()].push(value_ns);
                true
            }
            Op::Done => {
                let v = &mut self.vcpus[vcpu.index()];
                v.status = VcpuStatus::Done;
                self.terminal_vcpus += 1;
                v.finish = Some(now);
                self.stats.vcpu_finish[vcpu.index()] = Some(now);
                false
            }
        }
    }

    /// Starts a compute burst on the vCPU's pCPU.
    #[inline]
    fn begin_compute(
        &mut self,
        ctx: &mut Ctx<'_, Event>,
        vcpu: VcpuId,
        work: SimTime,
        after: AfterCpu,
    ) {
        let slot = {
            let v = &mut self.vcpus[vcpu.index()];
            v.status = VcpuStatus::Computing;
            v.after_cpu = after;
            v.pcpu_slot
        };
        let now = ctx.now;
        // `add` already returns the fresh completion prediction; using it
        // directly saves re-deriving it through `next_completion`.
        let c = self.pcpus[slot as usize].add(now, vcpu.0 as u64, work);
        ctx.schedule_at(
            c.at,
            Event::CpuDone {
                slot,
                epoch: c.epoch,
            },
        );
    }

    /// Continues a program after a synchronous operation ending at `t`.
    #[inline]
    fn continue_at(&mut self, ctx: &mut Ctx<'_, Event>, vcpu: VcpuId, t: SimTime) -> bool {
        if t <= ctx.now {
            true
        } else {
            ctx.schedule_at(t, Event::VcpuStep(vcpu));
            false
        }
    }

    /// Fire-and-forget TLB shootdown IPIs to all other vCPUs.
    fn broadcast_shootdown(&mut self, now: SimTime, from: VcpuId) {
        let src = self.vcpus[from.index()].node;
        let targets: Vec<(usize, NodeId)> = self
            .vcpus
            .iter()
            .enumerate()
            .filter(|&(i, v)| i != from.index() && v.status != VcpuStatus::Done)
            .map(|(i, v)| (i, v.node))
            .collect();
        for (vcpu, dst) in targets {
            self.stats.ipis.record(64);
            self.tracer.emit_with(|| TraceEvent::Ipi {
                at: now.as_nanos(),
                src_node: src.0,
                to_vcpu: vcpu as u32,
                kind: "shootdown",
            });
            if dst != src {
                let m = Message::new(src, dst, ByteSize::bytes(64), MsgClass::Interrupt);
                let _ = self.fabric.send(now, m);
            }
        }
    }

    /// Routes an IPI to a vCPU via the location table.
    fn send_ipi(&mut self, ctx: &mut Ctx<'_, Event>, src: NodeId, to: VcpuId) {
        self.stats.ipis.record(64);
        self.tracer.emit_with(|| TraceEvent::Ipi {
            at: ctx.now.as_nanos(),
            src_node: src.0,
            to_vcpu: to.0,
            kind: "ipi",
        });
        let dst = self.vcpus[to.index()].node;
        if dst == src {
            ctx.schedule_in(LOCAL_IPI, Event::IpiDeliver { vcpu: to });
        } else {
            let m = Message::new(src, dst, ByteSize::bytes(64), MsgClass::Interrupt);
            match self.fabric.send(ctx.now, m) {
                Ok(d) => ctx.schedule_at(d.deliver_at, Event::IpiDeliver { vcpu: to }),
                Err(_) => {
                    // Target slice dead or the fabric's bounded retries
                    // exhausted: the IPI is lost (the target, if it ever
                    // recovers, is restored from its checkpoint anyway).
                    self.stats.errors.push(VmError::IpiLost { src, vcpu: to });
                }
            }
        }
    }

    /// Submits an I/O plan: guest-side touches now, then device processing
    /// after the kick crosses the fabric.
    ///
    /// Returns false (releasing the queue slot) when the kick cannot reach
    /// the device's home node — a crashed device home under fault
    /// injection. The caller surfaces the failure to the guest.
    fn submit_io(
        &mut self,
        ctx: &mut Ctx<'_, Event>,
        vcpu: VcpuId,
        queue: QueueId,
        is_net: bool,
        plan: IoPlan,
        conn: Option<u64>,
    ) -> bool {
        let node = self.vcpus[vcpu.index()].node;
        let t = self.mem.access_batch(
            ctx.now,
            node,
            &touches_of(&plan.guest_touches),
            &mut self.fabric,
        );
        let process_at = match &plan.notify {
            Some(m) => match self.fabric.send(t, *m) {
                Ok(d) => d.deliver_at,
                Err(_) => {
                    self.stats
                        .errors
                        .push(VmError::DeviceUnreachable { vcpu, is_net });
                    if is_net {
                        if let Some(net) = self.net.as_mut() {
                            net.complete(queue);
                        }
                    } else if let Some(blk) = self.blk.as_mut() {
                        blk.complete(queue);
                    }
                    return false;
                }
            },
            None => t + SimTime::from_nanos(500), // local ioeventfd
        };
        ctx.schedule_at(
            process_at.max(ctx.now),
            Event::DevProcess {
                vcpu,
                queue,
                is_net,
                plan: Box::new(plan),
                conn,
            },
        );
        true
    }

    /// Device-side processing of a submitted plan.
    fn dev_process(
        &mut self,
        ctx: &mut Ctx<'_, Event>,
        vcpu: VcpuId,
        queue: QueueId,
        is_net: bool,
        plan: IoPlan,
        conn: Option<u64>,
    ) {
        let t = self.mem.access_batch(
            ctx.now,
            device_node(&plan, self.net.as_ref(), self.blk.as_ref(), is_net),
            &touches_of(&plan.device_touches),
            &mut self.fabric,
        );
        let t_backend = match plan.backend {
            BackendWork::None => t,
            BackendWork::NetTx { bytes } => {
                // Transmit to the external client over its link.
                if let (Some(conn), Some(client)) = (conn, self.client.as_ref()) {
                    let home = self.net.as_ref().expect("net device").home();
                    let m = Message::new(home, client.node, bytes, MsgClass::Io);
                    // A dropped response is retransmitted by the transport
                    // after a timeout so closed-loop clients never hang.
                    let deliver_at = match self.fabric.send(t, m) {
                        Ok(d) => d.deliver_at,
                        Err(_) => t + FABRIC_RETX,
                    };
                    ctx.schedule_at(
                        deliver_at,
                        Event::ClientDeliver {
                            conn,
                            bytes: bytes.as_u64(),
                        },
                    );
                    t
                } else {
                    // No client attached: the packet leaves the cluster.
                    t
                }
            }
            BackendWork::NetRx { .. } => t,
            BackendWork::Disk { bytes, write: _ } => {
                let dur = ssd_bandwidth().transfer_time(bytes);
                let start = t.max(self.stats.disk_free_at);
                self.stats.disk_free_at = start + dur;
                start + dur
            }
            BackendWork::Tmpfs { bytes } => t + tmpfs_bandwidth().transfer_time(bytes),
        };
        let complete_at = match &plan.completion.irq_msg {
            Some(m) => match self.fabric.send(t_backend, *m) {
                // A lost completion interrupt is re-raised after a timeout
                // (virtio re-notification); if the submitter's slice died,
                // `io_complete` discards it.
                Ok(d) => d.deliver_at,
                Err(_) => t_backend + FABRIC_RETX,
            },
            None => t_backend + SimTime::from_nanos(500),
        };
        ctx.schedule_at(
            complete_at.max(ctx.now),
            Event::IoComplete {
                vcpu,
                queue,
                is_net,
                guest_touches: plan.completion.guest_touches,
            },
        );
    }

    /// Handles an I/O completion interrupt on the submitter's slice.
    fn io_complete(
        &mut self,
        ctx: &mut Ctx<'_, Event>,
        vcpu: VcpuId,
        queue: QueueId,
        is_net: bool,
        guest_touches: Vec<virtio::plan::PageTouch>,
    ) {
        if is_net {
            if let Some(net) = self.net.as_mut() {
                net.complete(queue);
            }
        } else if let Some(blk) = self.blk.as_mut() {
            blk.complete(queue);
        }
        // The submitter's slice died since submission: the interrupt is
        // discarded (the vCPU restarts from its checkpoint).
        if self.vcpus[vcpu.index()].status == VcpuStatus::Failed {
            return;
        }
        let node = self.vcpus[vcpu.index()].node;
        let _ = self
            .mem
            .access_batch(ctx.now, node, &touches_of(&guest_touches), &mut self.fabric);
        // Block-I/O submitters wait synchronously; wake them.
        let v = &mut self.vcpus[vcpu.index()];
        if !is_net && v.status == VcpuStatus::BlockedIo {
            v.status = VcpuStatus::Ready;
            ctx.schedule_now(Event::VcpuStep(vcpu));
        } else if !is_net
            && v.status == VcpuStatus::Migrating
            && v.resume_status == VcpuStatus::BlockedIo
        {
            v.resume_status = VcpuStatus::Ready;
            v.missed_step = true;
        }
    }

    /// Injects requests from the client model into the fabric.
    fn inject_client_sends(&mut self, ctx: &mut Ctx<'_, Event>, sends: Vec<ClientSend>) {
        let Some(client) = self.client.as_ref() else {
            return;
        };
        let client_node = client.node;
        let home = self
            .net
            .as_ref()
            .expect("client requires a net device")
            .home();
        for s in sends {
            self.client_pending.insert(s.conn, ctx.now);
            let m = Message::new(client_node, home, s.bytes, MsgClass::Io);
            // Dropped requests are retransmitted by the client transport.
            let deliver_at = match self.fabric.send(ctx.now, m) {
                Ok(d) => d.deliver_at,
                Err(_) => ctx.now + FABRIC_RETX,
            };
            ctx.schedule_at(
                deliver_at,
                Event::ClientRxArrive {
                    conn: s.conn,
                    bytes: s.bytes.as_u64(),
                    target: s.target,
                },
            );
        }
    }

    /// A client request reached the NIC: run the RX delegation path.
    fn client_rx_arrive(
        &mut self,
        ctx: &mut Ctx<'_, Event>,
        conn: u64,
        bytes: u64,
        target: VcpuId,
    ) {
        let node = self.vcpus[target.index()].node;
        let bufs = self.rx_buffer_pages(bytes);
        let Some(net) = self.net.as_mut() else {
            return;
        };
        let Ok((plan, queue)) = net.plan_rx(target, node, &bufs, ByteSize::bytes(bytes)) else {
            // RX ring full: the transport retransmits after a backoff so
            // closed-loop clients never lose a request permanently.
            self.stats.rx_drops += 1;
            ctx.schedule_in(
                SimTime::from_micros(200),
                Event::ClientRxArrive {
                    conn,
                    bytes,
                    target,
                },
            );
            return;
        };
        // Device-side work happens here on the home node.
        let t = self.mem.access_batch(
            ctx.now,
            plan.device_touches.first().map(|t| t.node).unwrap_or(node),
            &touches_of(&plan.device_touches),
            &mut self.fabric,
        );
        let deliver_at = match &plan.completion.irq_msg {
            Some(m) => match self.fabric.send(t, *m) {
                Ok(d) => d.deliver_at,
                Err(_) => t + FABRIC_RETX,
            },
            None => t + SimTime::from_nanos(500),
        };
        ctx.schedule_at(
            deliver_at.max(ctx.now),
            Event::NetRxDeliver {
                vcpu: target,
                msg: GuestMsg::Net { conn, bytes },
                queue,
                guest_touches: plan.completion.guest_touches,
            },
        );
    }

    /// Round-robin guest buffer pages for incoming payloads.
    fn rx_buffer_pages(&mut self, bytes: u64) -> Vec<PageId> {
        let Some(region) = self.rx_buffers else {
            return Vec::new();
        };
        let pages = ByteSize::bytes(bytes).pages_4k().max(1).min(region.pages);
        let mut out = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            out.push(region.page(self.rx_cursor % region.pages));
            self.rx_cursor += 1;
        }
        out
    }

    /// Starts a vCPU migration; returns false if the profile lacks
    /// mobility or the vCPU is in a non-migratable state.
    pub fn request_migration(
        &mut self,
        ctx: &mut Ctx<'_, Event>,
        vcpu: VcpuId,
        to: Placement,
    ) -> bool {
        if !self.profile.mobility {
            return false;
        }
        let v = &mut self.vcpus[vcpu.index()];
        match v.status {
            VcpuStatus::Done | VcpuStatus::Migrating => return false,
            VcpuStatus::Computing => {
                let slot = v.pcpu_slot;
                v.status = VcpuStatus::Migrating;
                v.resume_status = VcpuStatus::Ready;
                v.missed_step = false;
                let rem = self.pcpus[slot as usize].cancel(ctx.now, vcpu.0 as u64);
                self.vcpus[vcpu.index()].stashed_work = Some(rem);
                self.reschedule_cpu(ctx, slot);
            }
            other => {
                // Blocked/sleeping/ready vCPUs migrate in place; wakeups
                // arriving mid-migration are recorded and replayed at
                // MigrationDone.
                v.resume_status = other;
                v.missed_step = false;
                v.status = VcpuStatus::Migrating;
            }
        }
        // Register dump on the source, then state transfer.
        let src = self.vcpus[vcpu.index()].node;
        self.tracer.emit_with(|| TraceEvent::VcpuMigrateStart {
            at: ctx.now.as_nanos(),
            vcpu: vcpu.0,
            from_node: src.0,
            to_node: to.node.0,
        });
        let dump_done = ctx.now + self.profile.register_dump_cost;
        let dump = Message::new(src, to.node, ByteSize::kib(8), MsgClass::Migration);
        let _ = self.fabric.send(dump_done, dump);
        // Location-table update broadcast to every other slice. IPIs routed
        // through a stale entry stall until the table converges, so the tiny
        // update rides the priority tier ahead of any bulk migration stream.
        for n in 0..self.fabric.nodes() {
            let dst = NodeId::from_usize(n);
            if dst != src && dst != to.node {
                let update =
                    Message::new(src, dst, ByteSize::bytes(64), MsgClass::Migration).urgent();
                let _ = self.fabric.send(dump_done, update);
            }
        }
        let done_at = ctx.now + self.profile.vcpu_migration_cost;
        ctx.schedule_at(done_at, Event::MigrationDone { vcpu, to });
        self.stats.migrations += 1;
        self.stats.migration_time += self.profile.vcpu_migration_cost;
        true
    }

    fn migration_done(&mut self, ctx: &mut Ctx<'_, Event>, vcpu: VcpuId, to: Placement) {
        // The destination died while the state transfer was in flight:
        // the vCPU lands dead and is recovered with the rest of the slice.
        if self.crashed[to.node.index()].is_some() {
            // If the slice was already restored elsewhere, land there
            // instead and resume; otherwise wait for recovery with the
            // rest of the slice.
            let restored_to = self
                .failure
                .as_ref()
                .and_then(|f| f.restored_to[to.node.index()]);
            // Until recovery re-places the vCPU, the crashed placement may
            // have no pCPU; an out-of-range slot keeps any (buggy) use loud.
            let slot = match restored_to {
                Some(target) => self.ensure_pcpu(target, to.pcpu),
                None => u32::MAX,
            };
            let v = &mut self.vcpus[vcpu.index()];
            debug_assert_eq!(v.status, VcpuStatus::Migrating);
            v.node = restored_to.unwrap_or(to.node);
            v.pcpu = to.pcpu;
            v.pcpu_slot = slot;
            v.status = VcpuStatus::Failed;
            v.stashed_work = None;
            if self.failure.is_none() {
                self.terminal_vcpus += 1;
            }
            v.missed_step = false;
            v.missed_charge = None;
            if restored_to.is_some() {
                v.restore_at = Some(ctx.now);
                ctx.schedule_now(Event::VcpuRestore { vcpu });
            }
            return;
        }
        self.tracer.emit_with(|| TraceEvent::VcpuMigrateDone {
            at: ctx.now.as_nanos(),
            vcpu: vcpu.0,
            node: to.node.0,
        });
        let slot = self.alloc_pcpu(to.node, to.pcpu);
        let (stashed, resume, missed_step, missed_charge) = {
            let v = &mut self.vcpus[vcpu.index()];
            debug_assert_eq!(v.status, VcpuStatus::Migrating);
            v.node = to.node;
            v.pcpu = to.pcpu;
            v.pcpu_slot = slot;
            (
                v.stashed_work.take(),
                v.resume_status,
                std::mem::take(&mut v.missed_step),
                v.missed_charge.take(),
            )
        };
        if self.profile.helper_thread_load > 0.0 {
            let load = self.profile.helper_thread_load;
            let now = ctx.now;
            self.pcpus[slot as usize].set_background_load(now, load);
        }
        if let Some(rem) = stashed {
            self.vcpus[vcpu.index()].status = VcpuStatus::Computing;
            let now = ctx.now;
            let _ = self.pcpus[slot as usize].add(now, vcpu.0 as u64, rem);
            self.reschedule_cpu(ctx, slot);
            return;
        }
        if let Some(work) = missed_charge {
            // The deferred CPU charge expired mid-migration: start it now
            // (after_cpu is still armed on the vCPU).
            let after =
                std::mem::replace(&mut self.vcpus[vcpu.index()].after_cpu, AfterCpu::Continue);
            self.vcpus[vcpu.index()].status = VcpuStatus::Ready;
            self.begin_compute(ctx, vcpu, work, after);
            return;
        }
        // Restore the pre-migration status; replay a missed step/wakeup.
        let v = &mut self.vcpus[vcpu.index()];
        v.status = resume;
        if missed_step {
            v.status = VcpuStatus::Ready;
            ctx.schedule_now(Event::VcpuStep(vcpu));
        }
        // For ready vCPUs without a missed step, the original wakeup event
        // is still queued and will arrive at the new placement.
    }

    /// Lazily creates (and instruments) a pCPU on `node`; returns its slot.
    fn ensure_pcpu(&mut self, node: NodeId, pcpu: u32) -> u32 {
        if let Some(&slot) = self.pcpu_slots.get(&(node, pcpu)) {
            return slot;
        }
        let slot = self.alloc_pcpu(node, pcpu);
        if self.profile.helper_thread_load > 0.0 {
            let load = self.profile.helper_thread_load;
            self.pcpus[slot as usize].set_background_load(SimTime::ZERO, load);
        }
        slot
    }

    /// A scripted node crash fires: the slice's vCPUs halt and their
    /// in-flight compute is lost.
    fn node_fail(&mut self, ctx: &mut Ctx<'_, Event>, node: NodeId) {
        if self.crashed[node.index()].is_some() {
            return;
        }
        self.crashed[node.index()] = Some(ctx.now);
        self.stats.node_crashes += 1;
        self.tracer.emit_with(|| TraceEvent::NodeCrash {
            at: ctx.now.as_nanos(),
            node: node.0,
        });
        // Cancel in-flight compute on the node's pCPUs so their timelines
        // stay audit-clean (the cancelled work is simply lost).
        let computing: Vec<(usize, u32)> = self
            .vcpus
            .iter()
            .enumerate()
            .filter(|&(_, v)| v.node == node && v.status == VcpuStatus::Computing)
            .map(|(i, v)| (i, v.pcpu_slot))
            .collect();
        let now = ctx.now;
        for &(i, slot) in &computing {
            // Stash the remainder: recovery re-executes it after restore
            // (the rollback cost itself is accounted analytically).
            let rem = self.pcpus[slot as usize].cancel(now, i as u64);
            self.vcpus[i].stashed_work = Some(rem);
            self.reschedule_cpu(ctx, slot);
        }
        // Every live vCPU on the slice halts. Migrating vCPUs survive:
        // their register state already left with the dump.
        for v in self.vcpus.iter_mut() {
            if v.node == node
                && !matches!(
                    v.status,
                    VcpuStatus::Done | VcpuStatus::Migrating | VcpuStatus::Failed
                )
            {
                v.status = VcpuStatus::Failed;
                if self.failure.is_none() {
                    self.terminal_vcpus += 1;
                }
            }
        }
    }

    /// One heartbeat round: the monitor slice probes every other slice it
    /// has not yet declared dead; consecutive misses past the threshold
    /// trigger an epoch bump (fencing the dead node) and recovery.
    fn heartbeat_round(&mut self, ctx: &mut Ctx<'_, Event>) {
        let Some(f) = self.failure.as_ref() else {
            return;
        };
        let interval = f.cfg.heartbeat_interval;
        let threshold = f.cfg.miss_threshold;
        let monitor = f.cfg.monitor;
        let phys_nodes = self.fabric.nodes() - usize::from(self.client.is_some());
        let mut declare: Vec<NodeId> = Vec::new();
        for n in 0..phys_nodes {
            if n == monitor.index() || self.failure.as_ref().is_none_or(|f| f.suspected[n]) {
                continue;
            }
            let dst = NodeId::from_usize(n);
            let probe = Message::new(monitor, dst, ByteSize::bytes(64), MsgClass::Control);
            // The fabric acks Control-class messages end-to-end with
            // bounded retries, so Err means the probe (or its retries)
            // never got through — a miss.
            let ok = self.fabric.send(ctx.now, probe).is_ok();
            let f = self.failure.as_mut().expect("checked above");
            if ok {
                f.misses[n] = 0;
            } else {
                f.misses[n] += 1;
                let misses = f.misses[n];
                self.stats.heartbeat_misses += 1;
                self.tracer.emit_with(|| TraceEvent::HeartbeatMiss {
                    at: ctx.now.as_nanos(),
                    node: dst.0,
                    misses,
                });
                if misses >= threshold {
                    f.suspected[n] = true;
                    declare.push(dst);
                }
            }
        }
        for dst in declare {
            let misses = self.failure.as_ref().expect("checked above").misses[dst.index()];
            self.tracer.emit_with(|| TraceEvent::NodeDeclaredDead {
                at: ctx.now.as_nanos(),
                node: dst.0,
                misses,
            });
            self.stats.detections += 1;
            if let Some(crash) = self.crashed[dst.index()] {
                self.stats.detection_latency += ctx.now - crash;
            }
            // Fence the declared node at a fresh cluster epoch before any
            // recovery touches the directory: from here on its accesses
            // are rejected, even if it is merely partitioned and alive.
            self.mem.dsm.set_clock(ctx.now);
            self.mem.dsm.bump_epoch(dst);
            self.stats.epoch_bumps += 1;
            ctx.schedule_now(Event::RecoverNode { node: dst });
        }
        let f = self.failure.as_ref().expect("checked above");
        if f.probing_needed(ctx.now) {
            ctx.schedule_in(interval, Event::Heartbeat);
        }
    }

    /// Picks the node a dead slice restores to: the configured
    /// `restore_to` when it is live and reachable, otherwise the
    /// lowest-numbered node that is neither dead, currently partitioned,
    /// nor the dead node itself.
    fn restore_target(&self, dead: NodeId, now: SimTime) -> Option<NodeId> {
        let f = self.failure.as_ref()?;
        let phys_nodes = self.fabric.nodes() - usize::from(self.client.is_some());
        let eligible = |n: NodeId| {
            n != dead
                && n.index() < phys_nodes
                && self.crashed[n.index()].is_none()
                && !self
                    .fabric
                    .fault_plan()
                    .is_some_and(|p| p.is_partitioned(n.0, now))
        };
        let preferred = f.cfg.restore_to;
        if eligible(preferred) {
            return Some(preferred);
        }
        (0..phys_nodes)
            .map(NodeId::from_usize)
            .find(|&n| eligible(n))
    }

    /// Recovers a declared-dead slice: quarantine its DSM pages, restore
    /// their contents from the last checkpoint image, and resume its
    /// vCPUs on the restore node once the image is streamed back.
    fn recover_node(&mut self, ctx: &mut Ctx<'_, Event>, node: NodeId) {
        let Some(f) = self.failure.as_ref() else {
            return;
        };
        if f.restored_to[node.index()].is_some() {
            return;
        }
        let cfg = f.cfg;
        let Some(target) = self.restore_target(node, ctx.now) else {
            // No live node left to restore onto; recovery is stuck until
            // something heals (a later partition-end retries).
            return;
        };
        if target != cfg.restore_to {
            self.stats.restore_fallbacks += 1;
        }
        self.failure.as_mut().expect("checked above").restored_to[node.index()] = Some(target);
        // 1. Every page homed on the dead slice is declared lost and
        //    re-granted exclusively at the restore node (the checkpoint
        //    image is the new truth — survivors' stale copies included).
        self.mem.dsm.set_clock(ctx.now);
        let pages = self.mem.dsm.quarantine_node(node, target);
        self.stats.pages_quarantined += pages;
        // 2. Stream the slice's share of the checkpoint image back from
        //    disk. Survivors are not rolled back; the guest work lost
        //    since the last checkpoint is charged to the stats instead.
        let image = ByteSize::bytes(pages * 4096);
        let restore_time = checkpoint::restore(image, 1, cfg.restore_disk, self.profile.link);
        if let Some(crash) = self.crashed[node.index()] {
            let interval = cfg.checkpoint_interval.as_nanos();
            if interval > 0 {
                self.stats.lost_work += SimTime::from_nanos(crash.as_nanos() % interval);
            }
            self.stats.recovery_downtime += (ctx.now - crash) + restore_time;
        }
        self.tracer.emit_with(|| TraceEvent::NodeRestore {
            at: ctx.now.as_nanos(),
            node: node.0,
            pages,
            restore_ns: restore_time.as_nanos(),
        });
        // 3. Re-place the slice's vCPUs on the restore node; they resume
        //    once the image is back in memory.
        let resume_at = ctx.now + restore_time;
        for i in 0..self.vcpus.len() {
            let failed_here = {
                let v = &self.vcpus[i];
                v.status == VcpuStatus::Failed && v.node == node
            };
            if !failed_here {
                continue;
            }
            // Land each vCPU on its own spare core of the restore node
            // (same pCPU-k-for-vCPU-k convention as a proactive drain)
            // rather than piling onto an already-busy core.
            let pcpu = i as u32;
            let slot = self.ensure_pcpu(target, pcpu);
            self.vcpus[i].node = target;
            self.vcpus[i].pcpu = pcpu;
            self.vcpus[i].pcpu_slot = slot;
            self.vcpus[i].restore_at = Some(resume_at);
            ctx.schedule_at(
                resume_at,
                Event::VcpuRestore {
                    vcpu: VcpuId::from_usize(i),
                },
            );
        }
        debug_assert!(
            self.mem.dsm.check_invariants().is_ok(),
            "DSM invariants violated after recovery: {:?}",
            self.mem.dsm.check_invariants()
        );
    }

    /// A scripted partition window opens: record the cut-off minority in
    /// the trace. The fabric already severs their traffic; the detector
    /// will miss probes and fence them like any other dead slice.
    fn partition_begin(&mut self, ctx: &mut Ctx<'_, Event>, idx: usize) {
        let nodes: Vec<u32> = self
            .fabric
            .fault_plan()
            .and_then(|p| p.partitions().get(idx))
            .map(|w| w.nodes.clone())
            .unwrap_or_default();
        if nodes.is_empty() {
            return;
        }
        self.stats.partitions += 1;
        for node in nodes {
            self.tracer.emit_with(|| TraceEvent::PartitionStart {
                at: ctx.now.as_nanos(),
                node,
            });
        }
    }

    /// A partition heals: every cut-off node that was declared dead in
    /// the meantime rejoins — it discards its stale page copies, resyncs
    /// to the current cluster epoch, and is probed (and trusted) again.
    /// A node that *crashed* while cut off stays fenced; its recovery is
    /// re-run instead so the vCPUs that failed after the first recovery
    /// pass are restored too.
    fn partition_end(&mut self, ctx: &mut Ctx<'_, Event>, idx: usize) {
        let nodes: Vec<u32> = self
            .fabric
            .fault_plan()
            .and_then(|p| p.partitions().get(idx))
            .map(|w| w.nodes.clone())
            .unwrap_or_default();
        for node in nodes {
            self.tracer.emit_with(|| TraceEvent::PartitionHeal {
                at: ctx.now.as_nanos(),
                node,
            });
            let dst = NodeId::new(node);
            // Still inside another overlapping window: not healed yet.
            if self
                .fabric
                .fault_plan()
                .is_some_and(|p| p.is_partitioned(node, ctx.now))
            {
                continue;
            }
            let declared = self
                .failure
                .as_ref()
                .is_some_and(|f| f.suspected[dst.index()]);
            if !declared {
                continue;
            }
            if self.crashed[dst.index()].is_some() {
                // Dead for real. Re-run recovery for the vCPUs that
                // failed after the partition-time recovery pass (and for
                // a recovery that found no eligible restore target).
                if let Some(f) = self.failure.as_mut() {
                    f.restored_to[dst.index()] = None;
                }
                ctx.schedule_now(Event::RecoverNode { node: dst });
                continue;
            }
            self.mem.dsm.set_clock(ctx.now);
            let (_epoch, _discarded) = self.mem.dsm.rejoin_node(dst);
            self.stats.rejoins += 1;
            if let Some(f) = self.failure.as_mut() {
                f.suspected[dst.index()] = false;
                f.misses[dst.index()] = 0;
                f.restored_to[dst.index()] = None;
            }
        }
    }

    /// A predicted failure: proactively drain the suspect slice (vCPU
    /// migrations + DSM master-copy drain) so the crash hits an empty
    /// node. Requires mobility — a GiantVM-style VM cannot drain.
    fn predict_failure(&mut self, ctx: &mut Ctx<'_, Event>, node: NodeId) {
        if self.crashed[node.index()].is_some() || !self.profile.mobility {
            return;
        }
        let Some(f) = self.failure.as_ref() else {
            return;
        };
        let target = f.cfg.restore_to;
        for i in 0..self.vcpus.len() {
            let (here, pcpu, done) = {
                let v = &self.vcpus[i];
                (v.node == node, v.pcpu, v.status == VcpuStatus::Done)
            };
            if !here || done {
                continue;
            }
            let vcpu = VcpuId::from_usize(i);
            let _ = self.ensure_pcpu(target, pcpu);
            if !self.request_migration(ctx, vcpu, Placement { node: target, pcpu }) {
                self.note_migration_refused(ctx.now, vcpu, node, target);
            }
        }
        // Move the master copies off the suspect slice ahead of the crash.
        self.mem.dsm.set_clock(ctx.now);
        let moved = self.mem.dsm.drain_node(node, target);
        self.stats.pages_drained += moved;
    }

    /// Records a refused vCPU migration (drain paths).
    pub(crate) fn note_migration_refused(
        &mut self,
        now: SimTime,
        vcpu: VcpuId,
        from: NodeId,
        to: NodeId,
    ) {
        self.stats.migrations_refused += 1;
        self.tracer.emit_with(|| TraceEvent::VcpuMigrateRefused {
            at: now.as_nanos(),
            vcpu: vcpu.0,
            from_node: from.0,
            to_node: to.0,
        });
    }
}

/// Extracts `(page, access)` pairs from plan touches.
fn touches_of(touches: &[virtio::plan::PageTouch]) -> Vec<(PageId, Access)> {
    touches.iter().map(|t| (t.page, t.access)).collect()
}

/// The node device-side touches run on (falls back to the device home).
fn device_node(
    plan: &IoPlan,
    net: Option<&VirtioNet>,
    blk: Option<&VirtioBlk>,
    is_net: bool,
) -> NodeId {
    plan.device_touches
        .first()
        .map(|t| t.node)
        .unwrap_or_else(|| {
            if is_net {
                net.map(|d| d.home()).unwrap_or_default()
            } else {
                blk.map(|d| d.home()).unwrap_or_default()
            }
        })
}

impl World for VmWorld {
    type Event = Event;

    fn handle(&mut self, ctx: &mut Ctx<'_, Event>, ev: Event) {
        match ev {
            Event::Start => {
                for i in 0..self.vcpus.len() {
                    ctx.schedule_now(Event::VcpuStep(VcpuId::from_usize(i)));
                    if let Some(interval) = self.timer_interval {
                        ctx.schedule_in(
                            interval,
                            Event::GuestTick {
                                vcpu: VcpuId::from_usize(i),
                            },
                        );
                    }
                }
                if let Some(client) = self.client.as_mut() {
                    let sends = client.model.start(ctx.now);
                    self.inject_client_sends(ctx, sends);
                }
                // Scripted crashes (and their predictions), plus the
                // heartbeat detector's first probe round.
                let crashes: Vec<(u32, SimTime)> = self
                    .fabric
                    .fault_plan()
                    .map(|p| p.crashes().iter().map(|c| (c.node, c.at)).collect())
                    .unwrap_or_default();
                let (heartbeat, lead) = match &self.failure {
                    Some(f) => (Some(f.cfg.heartbeat_interval), f.cfg.prediction_lead),
                    None => (None, None),
                };
                for &(node, at) in &crashes {
                    ctx.schedule_at(
                        at,
                        Event::NodeFail {
                            node: NodeId::new(node),
                        },
                    );
                    if let Some(lead) = lead {
                        ctx.schedule_at(
                            at.saturating_sub(lead),
                            Event::PredictFailure {
                                node: NodeId::new(node),
                            },
                        );
                    }
                }
                if let Some(interval) = heartbeat {
                    ctx.schedule_in(interval, Event::Heartbeat);
                }
                // Scripted partition windows open and heal on schedule;
                // the fabric itself severs traffic, these events only
                // bookend the window (trace + rejoin bookkeeping).
                let windows: Vec<(SimTime, SimTime)> = self
                    .fabric
                    .fault_plan()
                    .map(|p| p.partitions().iter().map(|w| (w.from, w.until)).collect())
                    .unwrap_or_default();
                for (idx, (from, until)) in windows.into_iter().enumerate() {
                    ctx.schedule_at(from, Event::PartitionBegin { idx });
                    ctx.schedule_at(until, Event::PartitionEnd { idx });
                }
            }
            Event::VcpuStep(v) => {
                let state = &mut self.vcpus[v.index()];
                if state.status == VcpuStatus::Migrating {
                    state.missed_step = true;
                } else {
                    self.step_vcpu(ctx, v);
                }
            }
            Event::CpuDone { slot, epoch } => {
                let mut done = std::mem::take(&mut self.done_scratch);
                done.clear();
                self.pcpus[slot as usize].on_completion_event_into(ctx.now, epoch, &mut done);
                if done.is_empty() {
                    self.done_scratch = done;
                    return;
                }
                self.reschedule_cpu(ctx, slot);
                for &task in &done {
                    let vcpu = VcpuId::new(task as u32);
                    let after = {
                        let v = &mut self.vcpus[vcpu.index()];
                        debug_assert_eq!(v.status, VcpuStatus::Computing);
                        v.status = VcpuStatus::Ready;
                        std::mem::replace(&mut v.after_cpu, AfterCpu::Continue)
                    };
                    match after {
                        AfterCpu::Continue => {}
                        AfterCpu::DeliverLocal { to, msg } => {
                            let src = self.vcpus[vcpu.index()].node;
                            let dst = self.vcpus[to.index()].node;
                            if src == dst {
                                ctx.schedule_in(LOCAL_IPI, Event::LocalDeliver { vcpu: to, msg });
                            } else {
                                // The wakeup crosses the fabric as an IPI;
                                // the payload moves through DSM socket
                                // buffers already touched on the send side.
                                let m = Message::new(
                                    src,
                                    dst,
                                    ByteSize::bytes(64),
                                    MsgClass::Interrupt,
                                );
                                // A lost wakeup is redelivered after a
                                // timeout so receivers blocked on a dead
                                // slice's sender resume after recovery.
                                let deliver_at = match self.fabric.send(ctx.now, m) {
                                    Ok(d) => d.deliver_at,
                                    Err(_) => ctx.now + FABRIC_RETX,
                                };
                                ctx.schedule_at(deliver_at, Event::LocalDeliver { vcpu: to, msg });
                            }
                        }
                    }
                    self.step_vcpu(ctx, vcpu);
                }
                self.done_scratch = done;
            }
            Event::ChargeCpu { vcpu, work } => {
                let state = &mut self.vcpus[vcpu.index()];
                if state.status == VcpuStatus::Migrating {
                    state.missed_charge = Some(work);
                    return;
                }
                let after =
                    std::mem::replace(&mut self.vcpus[vcpu.index()].after_cpu, AfterCpu::Continue);
                self.begin_compute(ctx, vcpu, work, after);
            }
            Event::IpiDeliver { vcpu } => {
                let v = &mut self.vcpus[vcpu.index()];
                if v.status == VcpuStatus::BlockedIpi {
                    v.status = VcpuStatus::Ready;
                    self.step_vcpu(ctx, vcpu);
                } else if v.status == VcpuStatus::Migrating
                    && v.resume_status == VcpuStatus::BlockedIpi
                {
                    v.resume_status = VcpuStatus::Ready;
                    v.missed_step = true;
                } else {
                    v.pending_ipis += 1;
                }
            }
            Event::LocalDeliver { vcpu, msg } => {
                let v = &mut self.vcpus[vcpu.index()];
                // A crashed receiver just queues the message: its pages
                // and program state come back with the checkpoint restore.
                if v.status == VcpuStatus::Failed {
                    v.local_inbox.push_back(msg);
                    return;
                }
                // The receiver reads the socket buffer pages.
                let node = v.node;
                let bufs = self.mem.kernel.socket_buffer_pages();
                let touches: Vec<(PageId, Access)> = bufs
                    .into_iter()
                    .take(1)
                    .map(|p| (p, Access::Read))
                    .collect();
                let t = self
                    .mem
                    .access_batch(ctx.now, node, &touches, &mut self.fabric);
                let v = &mut self.vcpus[vcpu.index()];
                v.local_inbox.push_back(msg);
                if matches!(v.status, VcpuStatus::BlockedLocal | VcpuStatus::BlockedAny) {
                    let msg = v.local_inbox.pop_front().expect("just pushed");
                    v.delivered = Some(msg);
                    v.status = VcpuStatus::Ready;
                    if t > ctx.now {
                        ctx.schedule_at(t, Event::VcpuStep(vcpu));
                    } else {
                        self.step_vcpu(ctx, vcpu);
                    }
                } else if v.status == VcpuStatus::Migrating
                    && matches!(
                        v.resume_status,
                        VcpuStatus::BlockedLocal | VcpuStatus::BlockedAny
                    )
                {
                    let msg = v.local_inbox.pop_front().expect("just pushed");
                    v.delivered = Some(msg);
                    v.resume_status = VcpuStatus::Ready;
                    v.missed_step = true;
                }
            }
            Event::DevProcess {
                vcpu,
                queue,
                is_net,
                plan,
                conn,
            } => self.dev_process(ctx, vcpu, queue, is_net, *plan, conn),
            Event::IoComplete {
                vcpu,
                queue,
                is_net,
                guest_touches,
            } => self.io_complete(ctx, vcpu, queue, is_net, guest_touches),
            Event::ClientRxArrive {
                conn,
                bytes,
                target,
            } => self.client_rx_arrive(ctx, conn, bytes, target),
            Event::NetRxDeliver {
                vcpu,
                msg,
                queue,
                guest_touches,
            } => {
                if let Some(net) = self.net.as_mut() {
                    net.complete(queue);
                }
                if self.vcpus[vcpu.index()].status == VcpuStatus::Failed {
                    self.vcpus[vcpu.index()].net_inbox.push_back(msg);
                    return;
                }
                let node = self.vcpus[vcpu.index()].node;
                let t = self.mem.access_batch(
                    ctx.now,
                    node,
                    &touches_of(&guest_touches),
                    &mut self.fabric,
                );
                let v = &mut self.vcpus[vcpu.index()];
                v.net_inbox.push_back(msg);
                if matches!(v.status, VcpuStatus::BlockedNet | VcpuStatus::BlockedAny) {
                    let msg = v.net_inbox.pop_front().expect("just pushed");
                    v.delivered = Some(msg);
                    v.status = VcpuStatus::Ready;
                    if t > ctx.now {
                        ctx.schedule_at(t, Event::VcpuStep(vcpu));
                    } else {
                        self.step_vcpu(ctx, vcpu);
                    }
                } else if v.status == VcpuStatus::Migrating
                    && matches!(
                        v.resume_status,
                        VcpuStatus::BlockedNet | VcpuStatus::BlockedAny
                    )
                {
                    let msg = v.net_inbox.pop_front().expect("just pushed");
                    v.delivered = Some(msg);
                    v.resume_status = VcpuStatus::Ready;
                    v.missed_step = true;
                }
            }
            Event::ClientDeliver { conn, bytes } => {
                if let Some(start) = self.client_pending.remove(&conn) {
                    let latency = ctx.now - start;
                    self.stats.request_latency.record_time(latency);
                    self.stats
                        .latency_series
                        .push(ctx.now, latency.as_millis_f64());
                    self.stats.completed_requests += 1;
                }
                if let Some(client) = self.client.as_mut() {
                    let sends = client.model.on_response(ctx.now, conn, bytes);
                    self.inject_client_sends(ctx, sends);
                }
            }
            Event::WakeVcpu(vcpu) => {
                let v = &mut self.vcpus[vcpu.index()];
                if v.status == VcpuStatus::Sleeping {
                    v.status = VcpuStatus::Ready;
                    self.step_vcpu(ctx, vcpu);
                } else if v.status == VcpuStatus::Migrating
                    && v.resume_status == VcpuStatus::Sleeping
                {
                    v.resume_status = VcpuStatus::Ready;
                    v.missed_step = true;
                }
            }
            Event::GuestTick { vcpu } => {
                let v = &self.vcpus[vcpu.index()];
                if v.status == VcpuStatus::Done {
                    return;
                }
                if v.status == VcpuStatus::Failed {
                    // Keep the tick chain alive for after the restore, but
                    // a dead slice touches no pages.
                    if let Some(interval) = self.timer_interval {
                        ctx.schedule_in(interval, Event::GuestTick { vcpu });
                    }
                    return;
                }
                let node = v.node;
                // The tick handler touches hot kernel pages; its latency
                // is absorbed (a tick steals ~microseconds of vCPU time).
                let trace = self
                    .mem
                    .kernel
                    .op_trace(vcpu.index(), guest::KernelOp::TimerTick);
                let _ = self
                    .mem
                    .access_batch(ctx.now, node, &trace.touches, &mut self.fabric);
                if let Some(interval) = self.timer_interval {
                    ctx.schedule_in(interval, Event::GuestTick { vcpu });
                }
            }
            Event::MigrationDone { vcpu, to } => self.migration_done(ctx, vcpu, to),
            Event::NodeFail { node } => self.node_fail(ctx, node),
            Event::Heartbeat => self.heartbeat_round(ctx),
            Event::PredictFailure { node } => self.predict_failure(ctx, node),
            Event::RecoverNode { node } => self.recover_node(ctx, node),
            Event::PartitionBegin { idx } => self.partition_begin(ctx, idx),
            Event::PartitionEnd { idx } => self.partition_end(ctx, idx),
            Event::FleetDeliver { vcpu, msg } => {
                // Network latency was already charged by the fleet
                // engine's ingress line: the message lands directly in the
                // guest's net inbox, waking a blocked receiver.
                let v = &mut self.vcpus[vcpu.index()];
                v.net_inbox.push_back(msg);
                if matches!(v.status, VcpuStatus::BlockedNet | VcpuStatus::BlockedAny) {
                    let msg = v.net_inbox.pop_front().expect("just pushed");
                    v.delivered = Some(msg);
                    v.status = VcpuStatus::Ready;
                    self.step_vcpu(ctx, vcpu);
                } else if v.status == VcpuStatus::Migrating
                    && matches!(
                        v.resume_status,
                        VcpuStatus::BlockedNet | VcpuStatus::BlockedAny
                    )
                {
                    let msg = v.net_inbox.pop_front().expect("just pushed");
                    v.delivered = Some(msg);
                    v.resume_status = VcpuStatus::Ready;
                    v.missed_step = true;
                }
            }
            Event::VcpuRestore { vcpu } => {
                let v = &mut self.vcpus[vcpu.index()];
                if v.status != VcpuStatus::Failed {
                    return;
                }
                // A cascading recovery superseded this restore (the
                // target died mid-restore and the vCPU was re-placed
                // with a later due time), or the restore landed on a
                // node that has since crashed: stay Failed and wait for
                // the newer restore.
                if v.restore_at != Some(ctx.now) || self.crashed[v.node.index()].is_some() {
                    return;
                }
                v.restore_at = None;
                if let Some(rem) = v.stashed_work.take() {
                    // Re-execute the burst that was in flight at the crash
                    // (after_cpu is still armed on the vCPU).
                    v.status = VcpuStatus::Computing;
                    let slot = v.pcpu_slot;
                    let now = ctx.now;
                    let _ = self.pcpus[slot as usize].add(now, vcpu.0 as u64, rem);
                    self.reschedule_cpu(ctx, slot);
                } else {
                    v.status = VcpuStatus::Ready;
                    self.step_vcpu(ctx, vcpu);
                }
            }
        }
    }
}

/// Builder for a distributed VM simulation.
pub struct VmBuilder {
    profile: HypervisorProfile,
    nodes: usize,
    ram: ByteSize,
    placements: Vec<Placement>,
    programs: Vec<Box<dyn Program>>,
    net_home: Option<NodeId>,
    blk_home: Option<NodeId>,
    client: Option<ClientConfig>,
    timer_interval: Option<SimTime>,
    fault_plan: Option<FaultPlan>,
    failure: Option<FailureConfig>,
    mem_cfg: Option<MemoryConfig>,
    seed: u64,
    calendar_threshold: Option<usize>,
}

impl VmBuilder {
    /// Starts a builder for a VM on a cluster of `nodes` machines.
    pub fn new(profile: HypervisorProfile, nodes: usize) -> Self {
        VmBuilder {
            profile,
            nodes,
            ram: ByteSize::gib(4),
            placements: Vec::new(),
            programs: Vec::new(),
            net_home: None,
            blk_home: None,
            client: None,
            timer_interval: None,
            fault_plan: None,
            failure: None,
            mem_cfg: None,
            seed: 0x5EED,
            calendar_threshold: None,
        }
    }

    /// Overrides the event queue's calendarization threshold (see
    /// [`sim_core::engine::EventQueue::with_calendar_threshold`]). Fleet
    /// shards hosting many tenants set this low so the queue calendarizes
    /// early instead of waiting for the default high-water mark.
    pub fn with_calendar_threshold(mut self, threshold: usize) -> Self {
        self.calendar_threshold = Some(threshold);
        self
    }

    /// Configures the memory subsystem through a [`MemoryConfig`] (its
    /// RAM size supersedes [`VmBuilder::ram`]; vCPU count, bootstrap node
    /// and node count are filled in from the builder at build time).
    pub fn with_memory(mut self, cfg: MemoryConfig) -> Self {
        self.mem_cfg = Some(cfg);
        self
    }

    /// Injects a deterministic fault plan: the fabric interprets its link
    /// faults and the world schedules its node crashes.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches the heartbeat failure detector (monitor = node 0) with
    /// its recovery policy.
    pub fn with_failure_detector(mut self, cfg: FailureConfig) -> Self {
        self.failure = Some(cfg);
        self
    }

    /// Enables periodic guest timer ticks (CONFIG_HZ-style) on every
    /// vCPU. Each tick touches hot kernel pages — background DSM noise
    /// whose cost depends on the guest kernel layout.
    pub fn with_timer(mut self, interval: SimTime) -> Self {
        self.timer_interval = Some(interval);
        self
    }

    /// Sets guest RAM.
    pub fn ram(mut self, ram: ByteSize) -> Self {
        self.ram = ram;
        self
    }

    /// Sets the determinism seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a vCPU at `placement` running `program`.
    pub fn vcpu(mut self, placement: Placement, program: Box<dyn Program>) -> Self {
        self.placements.push(placement);
        self.programs.push(program);
        self
    }

    /// Attaches a virtio-net device homed on `node`.
    pub fn with_net(mut self, node: NodeId) -> Self {
        self.net_home = Some(node);
        self
    }

    /// Attaches a virtio-blk device homed on `node`.
    pub fn with_blk(mut self, node: NodeId) -> Self {
        self.blk_home = Some(node);
        self
    }

    /// Attaches an external client.
    pub fn with_client(mut self, client: ClientConfig) -> Self {
        self.client = Some(client);
        self
    }

    /// Builds the simulation.
    ///
    /// # Panics
    ///
    /// Panics if no vCPUs were added or a placement is out of range.
    pub fn build(self) -> VmSim {
        assert!(!self.placements.is_empty(), "VM needs at least one vCPU");
        for p in &self.placements {
            assert!(p.node.index() < self.nodes, "placement out of range");
        }
        let bootstrap = self.placements[0].node;
        let mut fabric = Fabric::homogeneous(
            self.nodes + usize::from(self.client.is_some()),
            self.profile.link,
        );
        if let Some(plan) = &self.fault_plan {
            fabric.inject_faults(plan.clone());
        }
        let failure = self
            .failure
            .map(|cfg| FailureState::new(cfg, self.nodes, self.fault_plan.as_ref()));
        let mut mem = self
            .mem_cfg
            .unwrap_or_else(|| MemoryConfig::new(self.ram))
            .vcpus(self.placements.len())
            .bootstrap(bootstrap)
            .nodes(u32::try_from(self.nodes).expect("node count fits u32"))
            .build(&self.profile);

        // Devices and their ring pages.
        let queues = self.placements.len();
        let net = self.net_home.map(|home| {
            let rings = mem.alloc.alloc("virtio-net.rings", 2 * queues as u64);
            let dev = DeviceConfig::new(home)
                .mode(self.profile.io_mode)
                .queues(queues)
                .rings_at(rings.first)
                .build_net();
            mem.register_pages(&dev.ring_pages(), home, PageClass::DeviceRing);
            dev
        });
        let blk = self.blk_home.map(|home| {
            let rings = mem.alloc.alloc("virtio-blk.rings", 2 * queues as u64);
            let dev = DeviceConfig::new(home)
                .mode(self.profile.io_mode)
                .queues(queues)
                .rings_at(rings.first)
                .build_blk();
            mem.register_pages(&dev.ring_pages(), home, PageClass::DeviceRing);
            dev
        });
        let rx_buffers = net.as_ref().map(|dev| {
            let r = mem.alloc.alloc("net.rxbuf", 1024);
            mem.register_pages(
                &r.iter().collect::<Vec<_>>(),
                dev.home(),
                PageClass::Private,
            );
            r
        });

        // Client link overrides.
        let client = self.client.map(|mut c| {
            let client_node = NodeId::from_usize(self.nodes);
            let home = net
                .as_ref()
                .map(|d| d.home())
                .expect("client requires a net device");
            fabric.set_link(client_node, home, c.link);
            fabric.set_link(home, client_node, c.link);
            c.node = client_node;
            c
        });

        // pCPUs and helper threads, slab-indexed in placement order.
        let mut pcpus: Vec<PsCpu> = Vec::with_capacity(self.placements.len());
        let mut pcpu_keys: Vec<(NodeId, u32)> = Vec::with_capacity(self.placements.len());
        let mut pcpu_slots: HashMap<(NodeId, u32), u32> =
            HashMap::with_capacity(self.placements.len());
        for p in &self.placements {
            pcpu_slots.entry((p.node, p.pcpu)).or_insert_with(|| {
                let mut cpu = PsCpu::new(1.0);
                if self.profile.helper_thread_load > 0.0 {
                    cpu.set_background_load(SimTime::ZERO, self.profile.helper_thread_load);
                }
                pcpus.push(cpu);
                pcpu_keys.push((p.node, p.pcpu));
                (pcpus.len() - 1) as u32
            });
        }

        let root_rng = DetRng::new(self.seed);
        let vcpus: Vec<VcpuState> = self
            .placements
            .iter()
            .zip(self.programs)
            .enumerate()
            .map(|(i, (p, program))| VcpuState {
                node: p.node,
                pcpu: p.pcpu,
                pcpu_slot: pcpu_slots[&(p.node, p.pcpu)],
                program,
                status: VcpuStatus::Ready,
                net_inbox: VecDeque::new(),
                local_inbox: VecDeque::new(),
                pending_ipis: 0,
                delivered: None,
                after_cpu: AfterCpu::Continue,
                retry_op: None,
                stashed_work: None,
                resume_status: VcpuStatus::Ready,
                missed_step: false,
                missed_charge: None,
                restore_at: None,
                finish: None,
                rng: root_rng.derive(i as u64),
            })
            .collect();

        let stats = VmStats::new(vcpus.len());
        let console = DeviceConfig::new(bootstrap).build_console();
        let crashed = vec![None; fabric.nodes()];
        let world = VmWorld {
            profile: self.profile,
            fabric,
            mem,
            pcpus,
            pcpu_keys,
            pcpu_slots,
            done_scratch: Vec::new(),
            terminal_vcpus: 0,
            vcpus,
            net,
            blk,
            console,
            rx_buffers,
            rx_cursor: 0,
            client,
            client_pending: HashMap::new(),
            barriers: HashMap::new(),
            timer_interval: self.timer_interval,
            failure,
            crashed,
            tracer: Tracer::disabled(),
            fleet_outbox: None,
            stats,
        };
        // Steady-state occupancy is a handful of events per vCPU (steps,
        // timer ticks, in-flight messages); reserving up front keeps the
        // queue from rehashing during boot storms.
        let mut engine = match self.calendar_threshold {
            Some(t) => Engine::with_calendar_threshold(t),
            None => Engine::with_capacity(world.vcpus.len() * 8 + 64),
        };
        engine.schedule_at(SimTime::ZERO, Event::Start);
        VmSim { engine, world }
    }
}

/// A ready-to-run VM simulation.
pub struct VmSim {
    /// The event loop.
    pub engine: Engine<Event>,
    /// The VM world.
    pub world: VmWorld,
}

impl VmSim {
    /// Runs until every program finishes (and the client drains);
    /// returns the completion time of the last vCPU.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains while programs are still blocked —
    /// a deadlock in the workload definition.
    #[allow(clippy::panic)] // documented contract: a deadlocked workload is a caller bug
    pub fn run(&mut self) -> SimTime {
        while !self.world.finished() {
            if !self.engine.step(&mut self.world) {
                let blocked: Vec<String> = self
                    .world
                    .vcpus
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| {
                        // The same terminal predicate `finished()` uses: a
                        // Failed vCPU still counts as blocked while a
                        // failure injector could yet recover it.
                        v.status != VcpuStatus::Done
                            && !(self.world.failure.is_none() && v.status == VcpuStatus::Failed)
                    })
                    .map(|(i, v)| format!("vCPU{i} on node{} in {:?}", v.node.0, v.status))
                    .collect();
                panic!(
                    "event queue drained but the VM is not finished \
                     (deadlocked workload?): [{}]",
                    blocked.join(", ")
                );
            }
        }
        self.world.sync_elastic_stats();
        self.world
            .stats
            .vcpu_finish
            .iter()
            .flatten()
            .copied()
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Runs until the given horizon (events after it stay queued).
    pub fn run_until(&mut self, until: SimTime) {
        self.engine.run_until(&mut self.world, until);
        self.world.sync_elastic_stats();
    }

    /// Runs until the external client completes its load (for VMs whose
    /// server programs loop forever); returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains before the client finishes, or if
    /// no client is attached.
    pub fn run_client(&mut self) -> SimTime {
        assert!(
            self.world.client.is_some(),
            "run_client on a VM without a client"
        );
        while !self.world.client_done() {
            assert!(
                self.engine.step(&mut self.world),
                "event queue drained before the client finished"
            );
        }
        self.world.sync_elastic_stats();
        self.engine.now()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Requests a vCPU migration at the current time; returns false if the
    /// profile lacks mobility.
    pub fn migrate_vcpu(&mut self, vcpu: VcpuId, to: Placement) -> bool {
        let mut ctx = self.engine.external_ctx();
        self.world.request_migration(&mut ctx, vcpu, to)
    }

    /// Turns on structured tracing with a ring buffer of `capacity` events
    /// and returns a handle sharing the sink (snapshot/export from it after
    /// the run).
    pub fn enable_tracing(&mut self, capacity: usize) -> Tracer {
        let tracer = Tracer::ring(capacity);
        self.world.attach_tracer(tracer.clone());
        tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FixedCompute, Scripted};

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn single_vcpu_compute_runs_at_full_speed() {
        let mut sim = VmBuilder::new(HypervisorProfile::fragvisor(), 1)
            .vcpu(Placement::new(0, 0), Box::new(FixedCompute::new(ms(10))))
            .build();
        let done = sim.run();
        assert_eq!(done, ms(10));
    }

    #[test]
    fn overcommit_shares_the_pcpu() {
        // Four equal programs on one pCPU: each takes 4x as long.
        let mut b = VmBuilder::new(HypervisorProfile::single_machine(), 1);
        for _ in 0..4 {
            b = b.vcpu(Placement::new(0, 0), Box::new(FixedCompute::new(ms(10))));
        }
        let done = b.build().run();
        assert_eq!(done, ms(40));
    }

    #[test]
    fn distributed_compute_runs_in_parallel() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 4);
        for i in 0..4 {
            b = b.vcpu(Placement::new(i, 0), Box::new(FixedCompute::new(ms(10))));
        }
        let done = b.build().run();
        assert_eq!(done, ms(10));
    }

    #[test]
    fn giantvm_helper_threads_slow_compute() {
        let mut b = VmBuilder::new(HypervisorProfile::giantvm(), 2);
        for i in 0..2 {
            b = b.vcpu(Placement::new(i, 0), Box::new(FixedCompute::new(ms(10))));
        }
        let done = b.build().run();
        assert!(done > ms(10), "helper threads must steal cycles: {done}");
    }

    #[test]
    fn barrier_synchronizes() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
        b = b.vcpu(
            Placement::new(0, 0),
            Box::new(Scripted::new([
                Op::Compute(ms(1)),
                Op::Barrier { id: 1, parties: 2 },
                Op::Compute(ms(1)),
            ])),
        );
        b = b.vcpu(
            Placement::new(1, 0),
            Box::new(Scripted::new([
                Op::Compute(ms(5)),
                Op::Barrier { id: 1, parties: 2 },
                Op::Compute(ms(1)),
            ])),
        );
        let done = b.build().run();
        // Slow vCPU reaches the barrier at 5ms; both finish at 6ms.
        assert_eq!(done, ms(6));
    }

    #[test]
    fn ipi_wakeup() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
        b = b.vcpu(
            Placement::new(0, 0),
            Box::new(Scripted::new([
                Op::Compute(ms(2)),
                Op::SendIpi(VcpuId::new(1)),
            ])),
        );
        b = b.vcpu(Placement::new(1, 0), Box::new(Scripted::new([Op::WaitIpi])));
        let mut sim = b.build();
        let done = sim.run();
        assert!(done >= ms(2));
        assert_eq!(sim.world.stats.ipis.events, 1);
    }

    #[test]
    fn local_send_recv_across_nodes() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
        b = b.vcpu(
            Placement::new(0, 0),
            Box::new(Scripted::new([Op::LocalSend {
                to: VcpuId::new(1),
                tag: 7,
                bytes: 4096,
            }])),
        );
        b = b.vcpu(
            Placement::new(1, 0),
            Box::new(Scripted::new([Op::LocalRecv])),
        );
        let mut sim = b.build();
        let done = sim.run();
        assert!(done > SimTime::ZERO);
        // Socket buffers crossed the DSM: at least one fault occurred.
        assert!(sim.world.mem.dsm.stats().total_faults() > 0);
    }

    #[test]
    fn touch_batch_remote_pages_takes_time() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
        // vCPU0 creates pages; vCPU1 then reads them remotely.
        let touches: Vec<(PageId, Access)> = (0..32)
            .map(|i| (PageId::new(500_000 + i), Access::Write))
            .collect();
        let reads: Vec<(PageId, Access)> = (0..32)
            .map(|i| (PageId::new(500_000 + i), Access::Read))
            .collect();
        b = b.vcpu(
            Placement::new(0, 0),
            Box::new(Scripted::new([
                Op::TouchBatch(touches),
                Op::Barrier { id: 1, parties: 2 },
            ])),
        );
        b = b.vcpu(
            Placement::new(1, 0),
            Box::new(Scripted::new([
                Op::Barrier { id: 1, parties: 2 },
                Op::TouchBatch(reads),
            ])),
        );
        let mut sim = b.build();
        let done = sim.run();
        // 32 remote read faults at ~8us each.
        assert!(done > SimTime::from_micros(200), "{done}");
        assert_eq!(sim.world.mem.dsm.stats().read_faults, 32);
    }

    #[test]
    fn blk_io_roundtrip_local_and_remote() {
        let run = |vcpu_node: u32| -> SimTime {
            let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2).with_blk(NodeId::new(0));
            b = b.vcpu(
                Placement::new(vcpu_node, 0),
                Box::new(Scripted::new([Op::BlkIo {
                    bytes: ByteSize::mib(1),
                    write: false,
                    tmpfs: false,
                    buffer: (0..4).map(|i| PageId::new(600_000 + i)).collect(),
                }])),
            );
            b.build().run()
        };
        let local = run(0);
        let remote = run(1);
        // 1 MiB at 500 MB/s ≈ 2.1ms dominates; delegation adds overhead.
        assert!(local > SimTime::from_millis(2), "{local}");
        assert!(remote > local, "remote {remote} vs local {local}");
    }

    #[test]
    fn vcpu_migration_moves_execution() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
        b = b.vcpu(Placement::new(0, 0), Box::new(FixedCompute::new(ms(50))));
        let mut sim = b.build();
        sim.run_until(ms(10));
        assert!(sim.migrate_vcpu(VcpuId::new(0), Placement::new(1, 0)));
        let done = sim.run();
        assert_eq!(sim.world.placement_of(VcpuId::new(0)).node, NodeId::new(1));
        // 10ms before + ~86us migration + 40ms remaining.
        assert!(done >= ms(50), "{done}");
        assert!(done < ms(51), "{done}");
        assert_eq!(sim.world.stats.migrations, 1);
    }

    #[test]
    fn giantvm_cannot_migrate() {
        let mut b = VmBuilder::new(HypervisorProfile::giantvm(), 2);
        b = b.vcpu(Placement::new(0, 0), Box::new(FixedCompute::new(ms(5))));
        let mut sim = b.build();
        sim.run_until(ms(1));
        assert!(!sim.migrate_vcpu(VcpuId::new(0), Placement::new(1, 0)));
    }

    #[test]
    fn sleep_wakes_on_time() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 1);
        b = b.vcpu(
            Placement::new(0, 0),
            Box::new(Scripted::new([Op::Sleep(ms(7)), Op::Compute(ms(1))])),
        );
        let done = b.build().run();
        assert_eq!(done, ms(8));
    }
}
