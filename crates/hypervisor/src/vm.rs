//! The distributed-VM simulator: vCPUs, devices, client, migration.
//!
//! [`VmBuilder`] assembles a VM (profile, placement, RAM, devices, guest
//! programs, optional external client) into a [`VmSim`] — an engine plus a
//! [`VmWorld`]. The world executes guest programs op by op:
//!
//! * compute bursts share pCPUs under processor sharing ([`sim_core::pscpu`]),
//!   which is what makes overcommitment slow;
//! * page touches run through the DSM fault executor ([`crate::memory`]),
//!   which is what makes distribution slow;
//! * I/O runs through delegated VirtIO devices, crossing the fabric when the
//!   submitting vCPU is not on the device's home node;
//! * vCPU migration pauses a vCPU, transfers its state, and resumes it on
//!   another node — the mobility mechanism GiantVM lacks.

use std::collections::{BTreeSet, HashMap, VecDeque};

use comm::{Fabric, LinkProfile, Message, MsgClass, NodeId};
use dsm::{Access, PageClass, PageId};
use guest::memory::Region;
use sim_core::pscpu::PsCpu;
use sim_core::rng::DetRng;
use sim_core::time::SimTime;
use sim_core::trace::{TraceEvent, Tracer};
use sim_core::units::{Bandwidth, ByteSize};
use sim_core::{Ctx, Engine, World};
use virtio::device::{BlkRequest, DeviceConfig, VirtioBlk, VirtioConsole, VirtioNet};
use virtio::plan::{BackendWork, IoPlan};
use virtio::{QueueId, VcpuId};

use crate::memory::VmMemory;
use crate::profile::HypervisorProfile;
use crate::program::{GuestMsg, Op, ProgCtx, Program};
use crate::stats::VmStats;

/// Maximum zero-latency ops processed per engine event (fairness bound).
const OPS_PER_EVENT: u32 = 256;

/// Latency of a same-node IPI.
const LOCAL_IPI: SimTime = SimTime::from_nanos(200);

/// Socket-buffer chunk size for guest-local streams (16 KiB, four pages).
const SOCKET_CHUNK: u64 = 16 * 1024;

/// Same-node task wakeup (futex/scheduler, no hypervisor involvement).
const LOCAL_WAKEUP: SimTime = SimTime::from_micros(3);

/// Throughput of tmpfs (page-cache memcpy) on the testbed.
fn tmpfs_bandwidth() -> Bandwidth {
    Bandwidth::gbit_per_sec(80.0)
}

/// Throughput of the SATA SSD in the testbed (paper: ~500 MB/s).
fn ssd_bandwidth() -> Bandwidth {
    Bandwidth::mb_per_sec(500.0)
}

/// Where one vCPU runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    /// Host machine.
    pub node: NodeId,
    /// pCPU index on that machine.
    pub pcpu: u32,
}

impl Placement {
    /// Convenience constructor.
    pub fn new(node: u32, pcpu: u32) -> Self {
        Placement {
            node: NodeId::new(node),
            pcpu,
        }
    }
}

/// One request injection from the external client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientSend {
    /// Connection identifier (latency is tracked per in-flight conn).
    pub conn: u64,
    /// Request payload size.
    pub bytes: ByteSize,
    /// The vCPU the request is dispatched to (e.g. the NGINX worker).
    pub target: VcpuId,
}

/// External load generator (ApacheBench-style closed loop, FaaS client...).
pub trait ClientModel {
    /// Requests to inject at simulation start.
    fn start(&mut self, now: SimTime) -> Vec<ClientSend>;

    /// Called when a response arrives; returns follow-up requests.
    fn on_response(&mut self, now: SimTime, conn: u64, bytes: u64) -> Vec<ClientSend>;

    /// True when the client has no more work outstanding or planned.
    fn is_done(&self) -> bool;
}

/// Client attachment configuration.
pub struct ClientConfig {
    /// The node the client machine occupies in the fabric.
    pub node: NodeId,
    /// Link between the client and the VM's NIC-home node (both ways).
    pub link: LinkProfile,
    /// The load-generation behaviour.
    pub model: Box<dyn ClientModel>,
}

/// What a vCPU is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VcpuStatus {
    /// Step scheduled or in progress.
    Ready,
    /// Running a compute burst on its pCPU.
    Computing,
    /// Waiting for a network message.
    BlockedNet,
    /// Waiting for a guest-local message.
    BlockedLocal,
    /// Waiting for any message (network or local).
    BlockedAny,
    /// Waiting for an IPI.
    BlockedIpi,
    /// Waiting on a barrier.
    BlockedBarrier,
    /// Waiting for a block-I/O completion.
    BlockedIo,
    /// Sleeping until a timer fires.
    Sleeping,
    /// Mid-migration.
    Migrating,
    /// Program finished.
    Done,
}

/// What to do after a charged CPU burst completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AfterCpu {
    /// Continue the program.
    Continue,
    /// Deliver a guest-local message, then continue.
    DeliverLocal {
        /// Receiving vCPU.
        to: VcpuId,
        /// The message.
        msg: GuestMsg,
    },
}

struct VcpuState {
    node: NodeId,
    pcpu: u32,
    program: Box<dyn Program>,
    status: VcpuStatus,
    net_inbox: VecDeque<GuestMsg>,
    local_inbox: VecDeque<GuestMsg>,
    pending_ipis: u32,
    delivered: Option<GuestMsg>,
    after_cpu: AfterCpu,
    /// Op to re-execute after a transient queue-full backoff.
    retry_op: Option<Op>,
    /// Remaining compute stashed while migrating.
    stashed_work: Option<SimTime>,
    /// Pre-migration status to restore at MigrationDone.
    resume_status: VcpuStatus,
    /// A step/wake event fired while the vCPU was migrating.
    missed_step: bool,
    /// A deferred CPU charge fired while migrating.
    missed_charge: Option<SimTime>,
    finish: Option<SimTime>,
    rng: DetRng,
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: BTreeSet<u32>,
}

/// Simulation events.
#[derive(Debug)]
pub enum Event {
    /// Kick off all vCPUs and the client.
    Start,
    /// Advance a vCPU's program.
    VcpuStep(VcpuId),
    /// A pCPU completion prediction expires.
    CpuDone {
        /// Machine hosting the pCPU.
        node: NodeId,
        /// pCPU index.
        pcpu: u32,
        /// Prediction epoch (stale epochs are ignored).
        epoch: u64,
    },
    /// Charge a CPU burst to a vCPU (deferred so pCPU timelines stay
    /// monotonic after synchronous fault latencies).
    ChargeCpu {
        /// Target vCPU.
        vcpu: VcpuId,
        /// Reference-core work.
        work: SimTime,
    },
    /// An IPI reaches its target vCPU.
    IpiDeliver {
        /// Target vCPU.
        vcpu: VcpuId,
    },
    /// A guest-local message reaches its target vCPU.
    LocalDeliver {
        /// Target vCPU.
        vcpu: VcpuId,
        /// The message.
        msg: GuestMsg,
    },
    /// A device processes a submitted I/O plan (runs on the device node).
    DevProcess {
        /// Submitting vCPU.
        vcpu: VcpuId,
        /// Queue the request occupies.
        queue: QueueId,
        /// True for the net device, false for blk.
        is_net: bool,
        /// The plan to execute.
        plan: Box<IoPlan>,
        /// Connection id for client-bound transmissions.
        conn: Option<u64>,
    },
    /// An I/O completion interrupt reaches the submitting vCPU.
    IoComplete {
        /// Submitting vCPU.
        vcpu: VcpuId,
        /// Queue to release.
        queue: QueueId,
        /// True for the net device.
        is_net: bool,
        /// Used-ring touches performed by the guest on completion.
        guest_touches: Vec<virtio::plan::PageTouch>,
    },
    /// A request from the external client reaches the NIC-home node.
    ClientRxArrive {
        /// Connection id.
        conn: u64,
        /// Request size.
        bytes: u64,
        /// Target vCPU.
        target: VcpuId,
    },
    /// An RX payload/interrupt reaches the target vCPU's slice.
    NetRxDeliver {
        /// Target vCPU.
        vcpu: VcpuId,
        /// The message to enqueue.
        msg: GuestMsg,
        /// RX queue to release.
        queue: QueueId,
        /// Guest-side touches to perform on delivery.
        guest_touches: Vec<virtio::plan::PageTouch>,
    },
    /// A response reaches the external client.
    ClientDeliver {
        /// Connection id.
        conn: u64,
        /// Response size.
        bytes: u64,
    },
    /// A sleeping vCPU's timer fires.
    WakeVcpu(VcpuId),
    /// Periodic guest timer tick on a vCPU (scheduler tick, timekeeping).
    GuestTick {
        /// The ticking vCPU.
        vcpu: VcpuId,
    },
    /// A vCPU migration completes on the destination.
    MigrationDone {
        /// The migrating vCPU.
        vcpu: VcpuId,
        /// Destination placement.
        to: Placement,
    },
}

/// The simulated world of one (possibly aggregate) VM.
pub struct VmWorld {
    profile: HypervisorProfile,
    /// The inter-node fabric (plus client link).
    pub fabric: Fabric,
    /// Guest memory.
    pub mem: VmMemory,
    pcpus: HashMap<(NodeId, u32), PsCpu>,
    vcpus: Vec<VcpuState>,
    net: Option<VirtioNet>,
    blk: Option<VirtioBlk>,
    console: VirtioConsole,
    rx_buffers: Option<Region>,
    rx_cursor: u64,
    client: Option<ClientConfig>,
    client_pending: HashMap<u64, SimTime>,
    barriers: HashMap<u32, BarrierState>,
    timer_interval: Option<SimTime>,
    tracer: Tracer,
    /// Measurement output.
    pub stats: VmStats,
}

/// Stable trace id for a pCPU: packs `(node, pcpu)` so every physical core
/// in the cluster gets a distinct stream in the audit.
fn cpu_trace_id(node: NodeId, pcpu: u32) -> u32 {
    node.0 * 256 + pcpu
}

impl VmWorld {
    /// Number of vCPUs.
    pub fn vcpu_count(&self) -> usize {
        self.vcpus.len()
    }

    /// Current placement of a vCPU.
    pub fn placement_of(&self, vcpu: VcpuId) -> Placement {
        let v = &self.vcpus[vcpu.index()];
        Placement {
            node: v.node,
            pcpu: v.pcpu,
        }
    }

    /// True when every guest program has finished and the client (if any)
    /// is done.
    pub fn finished(&self) -> bool {
        self.vcpus.iter().all(|v| v.status == VcpuStatus::Done)
            && self.client.as_ref().is_none_or(|c| c.model.is_done())
    }

    /// The hypervisor profile in force.
    pub fn profile(&self) -> &HypervisorProfile {
        &self.profile
    }

    /// Console output meter (the PTY worker lives on the bootstrap slice).
    pub fn console_out(&self) -> sim_core::stats::Meter {
        self.console.out
    }

    /// True when the external client (if any) has completed its load.
    pub fn client_done(&self) -> bool {
        self.client.as_ref().is_none_or(|c| c.model.is_done())
    }

    /// Attaches a trace sink to every instrumented component of the world:
    /// the fabric, the DSM directory, and all pCPUs (including those lazily
    /// created by later migrations).
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.fabric.attach_tracer(tracer.clone());
        self.mem.dsm.attach_tracer(tracer.clone());
        for (&(node, pcpu), cpu) in self.pcpus.iter_mut() {
            cpu.attach_tracer(tracer.clone(), cpu_trace_id(node, pcpu));
        }
        self.tracer = tracer;
    }

    fn pcpu(&mut self, node: NodeId, pcpu: u32) -> &mut PsCpu {
        self.pcpus
            .get_mut(&(node, pcpu))
            .expect("placement refers to an unknown pCPU")
    }

    /// Schedules the (new) completion prediction for a pCPU.
    fn reschedule_cpu(&mut self, ctx: &mut Ctx<'_, Event>, node: NodeId, pcpu: u32) {
        if let Some(c) = self.pcpu(node, pcpu).next_completion() {
            ctx.schedule_at(
                c.at,
                Event::CpuDone {
                    node,
                    pcpu,
                    epoch: c.epoch,
                },
            );
        }
    }

    /// Advances a vCPU's program until it blocks, computes, or exhausts the
    /// per-event op budget.
    fn step_vcpu(&mut self, ctx: &mut Ctx<'_, Event>, vcpu: VcpuId) {
        let mut budget = OPS_PER_EVENT;
        loop {
            {
                let v = &self.vcpus[vcpu.index()];
                if v.status != VcpuStatus::Ready {
                    return;
                }
            }
            if budget == 0 {
                ctx.schedule_now(Event::VcpuStep(vcpu));
                return;
            }
            budget -= 1;
            let retried = self.vcpus[vcpu.index()].retry_op.take();
            let op = match retried {
                Some(op) => op,
                None => {
                    let v = &mut self.vcpus[vcpu.index()];
                    let mut cx = ProgCtx {
                        now: ctx.now,
                        vcpu,
                        rng: &mut v.rng,
                        delivered: v.delivered.take(),
                        inbox: &v.net_inbox,
                        alloc: &mut self.mem.alloc,
                    };
                    v.program.next(&mut cx)
                }
            };
            if !self.exec_op(ctx, vcpu, op) {
                return;
            }
        }
    }

    /// Executes one op; returns true if the program can continue in the
    /// same event.
    fn exec_op(&mut self, ctx: &mut Ctx<'_, Event>, vcpu: VcpuId, op: Op) -> bool {
        let now = ctx.now;
        let node = self.vcpus[vcpu.index()].node;
        match op {
            Op::Compute(work) => {
                self.begin_compute(ctx, vcpu, work, AfterCpu::Continue);
                false
            }
            Op::Touch { page, access } => {
                let t = self.mem.access(now, node, page, access, &mut self.fabric);
                self.continue_at(ctx, vcpu, t)
            }
            Op::TouchBatch(touches) => {
                let t = self.mem.access_batch(now, node, &touches, &mut self.fabric);
                self.continue_at(ctx, vcpu, t)
            }
            Op::Kernel(kop) => {
                let trace = self.mem.kernel.op_trace(vcpu.index(), kop);
                let t = self
                    .mem
                    .access_batch(now, node, &trace.touches, &mut self.fabric);
                if trace.tlb_shootdown {
                    self.broadcast_shootdown(now, vcpu);
                }
                if trace.cpu.is_zero() {
                    return self.continue_at(ctx, vcpu, t);
                }
                if t == now {
                    self.begin_compute(ctx, vcpu, trace.cpu, AfterCpu::Continue);
                } else {
                    ctx.schedule_at(
                        t,
                        Event::ChargeCpu {
                            vcpu,
                            work: trace.cpu,
                        },
                    );
                    self.vcpus[vcpu.index()].after_cpu = AfterCpu::Continue;
                }
                false
            }
            Op::NetSend {
                conn,
                bytes,
                payload,
            } => {
                let Some(net) = self.net.as_mut() else {
                    panic!("NetSend on a VM without a net device");
                };
                match net.plan_tx(vcpu, node, &payload, bytes) {
                    Ok((plan, queue)) => {
                        self.submit_io(ctx, vcpu, queue, true, plan, Some(conn));
                        // Transmission is asynchronous for the guest.
                        true
                    }
                    Err(_) => {
                        // Ring full: socket backpressure. Stash the op and
                        // retry it once descriptors free up.
                        self.vcpus[vcpu.index()].retry_op = Some(Op::NetSend {
                            conn,
                            bytes,
                            payload,
                        });
                        ctx.schedule_in(SimTime::from_micros(50), Event::VcpuStep(vcpu));
                        self.stats.tx_drops += 1;
                        false
                    }
                }
            }
            Op::NetRecv => {
                let v = &mut self.vcpus[vcpu.index()];
                if let Some(msg) = v.net_inbox.pop_front() {
                    v.delivered = Some(msg);
                    true
                } else {
                    v.status = VcpuStatus::BlockedNet;
                    false
                }
            }
            Op::BlkIo {
                bytes,
                write,
                tmpfs,
                buffer,
            } => {
                let Some(blk) = self.blk.as_mut() else {
                    panic!("BlkIo on a VM without a block device");
                };
                let req = BlkRequest {
                    bytes,
                    write,
                    tmpfs,
                };
                match blk.plan_io(vcpu, node, req, &buffer) {
                    Ok((plan, queue)) => {
                        self.submit_io(ctx, vcpu, queue, false, plan, None);
                        self.vcpus[vcpu.index()].status = VcpuStatus::BlockedIo;
                        false
                    }
                    Err(_) => {
                        // Queue full: block on the device and reissue the
                        // same request after the backoff.
                        self.vcpus[vcpu.index()].retry_op = Some(Op::BlkIo {
                            bytes,
                            write,
                            tmpfs,
                            buffer,
                        });
                        ctx.schedule_in(SimTime::from_micros(50), Event::VcpuStep(vcpu));
                        false
                    }
                }
            }
            Op::LocalSend { to, tag, bytes } => {
                let trace = self
                    .mem
                    .kernel
                    .op_trace(vcpu.index(), guest::KernelOp::LocalSocketSend(bytes));
                let mut t = self
                    .mem
                    .access_batch(now, node, &trace.touches, &mut self.fabric);
                // Large payloads stream through the bounded socket buffer:
                // each 16 KiB chunk fills the buffer, wakes the receiver,
                // and waits for it to drain — a wakeup ping-pong whose cost
                // dominates cross-node guest IPC (§7.2, Figure 12).
                let dst_node = self.vcpus[to.index()].node;
                let chunks = bytes / SOCKET_CHUNK;
                if chunks > 0 {
                    let wake = if dst_node == node {
                        LOCAL_WAKEUP
                    } else {
                        self.profile.remote_wakeup
                    };
                    let bufs = self.mem.kernel.socket_buffer_pages();
                    for cursor in 0..chunks as usize {
                        // Sender refills the (shared) socket buffer page...
                        let page = bufs[cursor % bufs.len()];
                        t = self
                            .mem
                            .access(t, node, page, Access::Write, &mut self.fabric);
                        t += wake;
                        // ...and the receiver drains it.
                        t = self
                            .mem
                            .access(t, dst_node, page, Access::Read, &mut self.fabric);
                        t += wake;
                    }
                }
                let msg = GuestMsg::Local {
                    from: vcpu,
                    tag,
                    bytes,
                };
                ctx.schedule_at(
                    t,
                    Event::ChargeCpu {
                        vcpu,
                        work: trace.cpu,
                    },
                );
                self.vcpus[vcpu.index()].after_cpu = AfterCpu::DeliverLocal { to, msg };
                false
            }
            Op::LocalRecv => {
                let v = &mut self.vcpus[vcpu.index()];
                if let Some(msg) = v.local_inbox.pop_front() {
                    v.delivered = Some(msg);
                    true
                } else {
                    v.status = VcpuStatus::BlockedLocal;
                    false
                }
            }
            Op::RecvAny => {
                let v = &mut self.vcpus[vcpu.index()];
                if let Some(msg) = v.local_inbox.pop_front() {
                    v.delivered = Some(msg);
                    true
                } else if let Some(msg) = v.net_inbox.pop_front() {
                    v.delivered = Some(msg);
                    true
                } else {
                    v.status = VcpuStatus::BlockedAny;
                    false
                }
            }
            Op::ConsoleWrite { bytes } => {
                // printk is asynchronous: the guest pays a syscall-ish cost
                // and the PTY worker on the bootstrap slice drains it.
                if let Some(m) = self.console.plan_write(node, ByteSize::bytes(bytes)) {
                    let _ = self.fabric.send(now, m);
                }
                let t = now + SimTime::from_micros(1);
                self.continue_at(ctx, vcpu, t)
            }
            Op::SendIpi(to) => {
                self.send_ipi(ctx, node, to);
                true
            }
            Op::WaitIpi => {
                let v = &mut self.vcpus[vcpu.index()];
                if v.pending_ipis > 0 {
                    v.pending_ipis -= 1;
                    true
                } else {
                    v.status = VcpuStatus::BlockedIpi;
                    false
                }
            }
            Op::Barrier { id, parties } => {
                let b = self.barriers.entry(id).or_default();
                b.arrived.insert(vcpu.0);
                if b.arrived.len() as u32 >= parties {
                    let woken: Vec<u32> = b.arrived.iter().copied().collect();
                    self.barriers.remove(&id);
                    for w in woken {
                        if w != vcpu.0 {
                            let peer = &mut self.vcpus[w as usize];
                            if peer.status == VcpuStatus::Migrating {
                                // The peer blocked on the barrier and was
                                // then migrated; replay the wake at
                                // MigrationDone.
                                debug_assert_eq!(peer.resume_status, VcpuStatus::BlockedBarrier);
                                peer.resume_status = VcpuStatus::Ready;
                                peer.missed_step = true;
                            } else {
                                debug_assert_eq!(peer.status, VcpuStatus::BlockedBarrier);
                                peer.status = VcpuStatus::Ready;
                                ctx.schedule_now(Event::VcpuStep(VcpuId::new(w)));
                            }
                        }
                    }
                    true
                } else {
                    self.vcpus[vcpu.index()].status = VcpuStatus::BlockedBarrier;
                    false
                }
            }
            Op::Sleep(d) => {
                self.vcpus[vcpu.index()].status = VcpuStatus::Sleeping;
                ctx.schedule_in(d, Event::WakeVcpu(vcpu));
                false
            }
            Op::Done => {
                let v = &mut self.vcpus[vcpu.index()];
                v.status = VcpuStatus::Done;
                v.finish = Some(now);
                self.stats.vcpu_finish[vcpu.index()] = Some(now);
                false
            }
        }
    }

    /// Starts a compute burst on the vCPU's pCPU.
    fn begin_compute(
        &mut self,
        ctx: &mut Ctx<'_, Event>,
        vcpu: VcpuId,
        work: SimTime,
        after: AfterCpu,
    ) {
        let (node, pcpu) = {
            let v = &mut self.vcpus[vcpu.index()];
            v.status = VcpuStatus::Computing;
            v.after_cpu = after;
            (v.node, v.pcpu)
        };
        let now = ctx.now;
        let _ = self.pcpu(node, pcpu).add(now, vcpu.0 as u64, work);
        self.reschedule_cpu(ctx, node, pcpu);
    }

    /// Continues a program after a synchronous operation ending at `t`.
    fn continue_at(&mut self, ctx: &mut Ctx<'_, Event>, vcpu: VcpuId, t: SimTime) -> bool {
        if t <= ctx.now {
            true
        } else {
            ctx.schedule_at(t, Event::VcpuStep(vcpu));
            false
        }
    }

    /// Fire-and-forget TLB shootdown IPIs to all other vCPUs.
    fn broadcast_shootdown(&mut self, now: SimTime, from: VcpuId) {
        let src = self.vcpus[from.index()].node;
        let targets: Vec<(usize, NodeId)> = self
            .vcpus
            .iter()
            .enumerate()
            .filter(|&(i, v)| i != from.index() && v.status != VcpuStatus::Done)
            .map(|(i, v)| (i, v.node))
            .collect();
        for (vcpu, dst) in targets {
            self.stats.ipis.record(64);
            self.tracer.emit_with(|| TraceEvent::Ipi {
                at: now.as_nanos(),
                src_node: src.0,
                to_vcpu: vcpu as u32,
                kind: "shootdown",
            });
            if dst != src {
                let m = Message::new(src, dst, ByteSize::bytes(64), MsgClass::Interrupt);
                let _ = self.fabric.send(now, m);
            }
        }
    }

    /// Routes an IPI to a vCPU via the location table.
    fn send_ipi(&mut self, ctx: &mut Ctx<'_, Event>, src: NodeId, to: VcpuId) {
        self.stats.ipis.record(64);
        self.tracer.emit_with(|| TraceEvent::Ipi {
            at: ctx.now.as_nanos(),
            src_node: src.0,
            to_vcpu: to.0,
            kind: "ipi",
        });
        let dst = self.vcpus[to.index()].node;
        if dst == src {
            ctx.schedule_in(LOCAL_IPI, Event::IpiDeliver { vcpu: to });
        } else {
            let m = Message::new(src, dst, ByteSize::bytes(64), MsgClass::Interrupt);
            let d = self
                .fabric
                .send(ctx.now, m)
                .expect("IPI endpoints are validated at VM build");
            ctx.schedule_at(d.deliver_at, Event::IpiDeliver { vcpu: to });
        }
    }

    /// Submits an I/O plan: guest-side touches now, then device processing
    /// after the kick crosses the fabric.
    fn submit_io(
        &mut self,
        ctx: &mut Ctx<'_, Event>,
        vcpu: VcpuId,
        queue: QueueId,
        is_net: bool,
        plan: IoPlan,
        conn: Option<u64>,
    ) {
        let node = self.vcpus[vcpu.index()].node;
        let t = self.mem.access_batch(
            ctx.now,
            node,
            &touches_of(&plan.guest_touches),
            &mut self.fabric,
        );
        let process_at = match &plan.notify {
            Some(m) => {
                let d = self
                    .fabric
                    .send(t, *m)
                    .expect("device plans only name in-range nodes");
                d.deliver_at
            }
            None => t + SimTime::from_nanos(500), // local ioeventfd
        };
        ctx.schedule_at(
            process_at.max(ctx.now),
            Event::DevProcess {
                vcpu,
                queue,
                is_net,
                plan: Box::new(plan),
                conn,
            },
        );
    }

    /// Device-side processing of a submitted plan.
    fn dev_process(
        &mut self,
        ctx: &mut Ctx<'_, Event>,
        vcpu: VcpuId,
        queue: QueueId,
        is_net: bool,
        plan: IoPlan,
        conn: Option<u64>,
    ) {
        let t = self.mem.access_batch(
            ctx.now,
            device_node(&plan, self.net.as_ref(), self.blk.as_ref(), is_net),
            &touches_of(&plan.device_touches),
            &mut self.fabric,
        );
        let t_backend = match plan.backend {
            BackendWork::None => t,
            BackendWork::NetTx { bytes } => {
                // Transmit to the external client over its link.
                if let (Some(conn), Some(client)) = (conn, self.client.as_ref()) {
                    let home = self.net.as_ref().expect("net device").home();
                    let m = Message::new(home, client.node, bytes, MsgClass::Io);
                    let d = self
                        .fabric
                        .send(t, m)
                        .expect("client link is registered at VM build");
                    ctx.schedule_at(
                        d.deliver_at,
                        Event::ClientDeliver {
                            conn,
                            bytes: bytes.as_u64(),
                        },
                    );
                    t
                } else {
                    // No client attached: the packet leaves the cluster.
                    t
                }
            }
            BackendWork::NetRx { .. } => t,
            BackendWork::Disk { bytes, write: _ } => {
                let dur = ssd_bandwidth().transfer_time(bytes);
                let start = t.max(self.stats.disk_free_at);
                self.stats.disk_free_at = start + dur;
                start + dur
            }
            BackendWork::Tmpfs { bytes } => t + tmpfs_bandwidth().transfer_time(bytes),
        };
        let complete_at = match &plan.completion.irq_msg {
            Some(m) => {
                let d = self
                    .fabric
                    .send(t_backend, *m)
                    .expect("device plans only name in-range nodes");
                d.deliver_at
            }
            None => t_backend + SimTime::from_nanos(500),
        };
        ctx.schedule_at(
            complete_at.max(ctx.now),
            Event::IoComplete {
                vcpu,
                queue,
                is_net,
                guest_touches: plan.completion.guest_touches,
            },
        );
    }

    /// Handles an I/O completion interrupt on the submitter's slice.
    fn io_complete(
        &mut self,
        ctx: &mut Ctx<'_, Event>,
        vcpu: VcpuId,
        queue: QueueId,
        is_net: bool,
        guest_touches: Vec<virtio::plan::PageTouch>,
    ) {
        if is_net {
            if let Some(net) = self.net.as_mut() {
                net.complete(queue);
            }
        } else if let Some(blk) = self.blk.as_mut() {
            blk.complete(queue);
        }
        let node = self.vcpus[vcpu.index()].node;
        let _ = self
            .mem
            .access_batch(ctx.now, node, &touches_of(&guest_touches), &mut self.fabric);
        // Block-I/O submitters wait synchronously; wake them.
        let v = &mut self.vcpus[vcpu.index()];
        if !is_net && v.status == VcpuStatus::BlockedIo {
            v.status = VcpuStatus::Ready;
            ctx.schedule_now(Event::VcpuStep(vcpu));
        } else if !is_net
            && v.status == VcpuStatus::Migrating
            && v.resume_status == VcpuStatus::BlockedIo
        {
            v.resume_status = VcpuStatus::Ready;
            v.missed_step = true;
        }
    }

    /// Injects requests from the client model into the fabric.
    fn inject_client_sends(&mut self, ctx: &mut Ctx<'_, Event>, sends: Vec<ClientSend>) {
        let Some(client) = self.client.as_ref() else {
            return;
        };
        let client_node = client.node;
        let home = self
            .net
            .as_ref()
            .expect("client requires a net device")
            .home();
        for s in sends {
            self.client_pending.insert(s.conn, ctx.now);
            let m = Message::new(client_node, home, s.bytes, MsgClass::Io);
            let d = self
                .fabric
                .send(ctx.now, m)
                .expect("client link is registered at VM build");
            ctx.schedule_at(
                d.deliver_at,
                Event::ClientRxArrive {
                    conn: s.conn,
                    bytes: s.bytes.as_u64(),
                    target: s.target,
                },
            );
        }
    }

    /// A client request reached the NIC: run the RX delegation path.
    fn client_rx_arrive(
        &mut self,
        ctx: &mut Ctx<'_, Event>,
        conn: u64,
        bytes: u64,
        target: VcpuId,
    ) {
        let node = self.vcpus[target.index()].node;
        let bufs = self.rx_buffer_pages(bytes);
        let Some(net) = self.net.as_mut() else {
            return;
        };
        let Ok((plan, queue)) = net.plan_rx(target, node, &bufs, ByteSize::bytes(bytes)) else {
            // RX ring full: the transport retransmits after a backoff so
            // closed-loop clients never lose a request permanently.
            self.stats.rx_drops += 1;
            ctx.schedule_in(
                SimTime::from_micros(200),
                Event::ClientRxArrive {
                    conn,
                    bytes,
                    target,
                },
            );
            return;
        };
        // Device-side work happens here on the home node.
        let t = self.mem.access_batch(
            ctx.now,
            plan.device_touches.first().map(|t| t.node).unwrap_or(node),
            &touches_of(&plan.device_touches),
            &mut self.fabric,
        );
        let deliver_at = match &plan.completion.irq_msg {
            Some(m) => {
                self.fabric
                    .send(t, *m)
                    .expect("device plans only name in-range nodes")
                    .deliver_at
            }
            None => t + SimTime::from_nanos(500),
        };
        ctx.schedule_at(
            deliver_at.max(ctx.now),
            Event::NetRxDeliver {
                vcpu: target,
                msg: GuestMsg::Net { conn, bytes },
                queue,
                guest_touches: plan.completion.guest_touches,
            },
        );
    }

    /// Round-robin guest buffer pages for incoming payloads.
    fn rx_buffer_pages(&mut self, bytes: u64) -> Vec<PageId> {
        let Some(region) = self.rx_buffers else {
            return Vec::new();
        };
        let pages = ByteSize::bytes(bytes).pages_4k().max(1).min(region.pages);
        let mut out = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            out.push(region.page(self.rx_cursor % region.pages));
            self.rx_cursor += 1;
        }
        out
    }

    /// Starts a vCPU migration; returns false if the profile lacks
    /// mobility or the vCPU is in a non-migratable state.
    pub fn request_migration(
        &mut self,
        ctx: &mut Ctx<'_, Event>,
        vcpu: VcpuId,
        to: Placement,
    ) -> bool {
        if !self.profile.mobility {
            return false;
        }
        let v = &mut self.vcpus[vcpu.index()];
        match v.status {
            VcpuStatus::Done | VcpuStatus::Migrating => return false,
            VcpuStatus::Computing => {
                let (node, pcpu) = (v.node, v.pcpu);
                v.status = VcpuStatus::Migrating;
                v.resume_status = VcpuStatus::Ready;
                v.missed_step = false;
                let rem = self.pcpu(node, pcpu).cancel(ctx.now, vcpu.0 as u64);
                self.vcpus[vcpu.index()].stashed_work = Some(rem);
                self.reschedule_cpu(ctx, node, pcpu);
            }
            other => {
                // Blocked/sleeping/ready vCPUs migrate in place; wakeups
                // arriving mid-migration are recorded and replayed at
                // MigrationDone.
                v.resume_status = other;
                v.missed_step = false;
                v.status = VcpuStatus::Migrating;
            }
        }
        // Register dump on the source, then state transfer.
        let src = self.vcpus[vcpu.index()].node;
        self.tracer.emit_with(|| TraceEvent::VcpuMigrateStart {
            at: ctx.now.as_nanos(),
            vcpu: vcpu.0,
            from_node: src.0,
            to_node: to.node.0,
        });
        let dump_done = ctx.now + self.profile.register_dump_cost;
        let dump = Message::new(src, to.node, ByteSize::kib(8), MsgClass::Migration);
        let _ = self.fabric.send(dump_done, dump);
        // Location-table update broadcast to every other slice. IPIs routed
        // through a stale entry stall until the table converges, so the tiny
        // update rides the priority tier ahead of any bulk migration stream.
        for n in 0..self.fabric.nodes() {
            let dst = NodeId::from_usize(n);
            if dst != src && dst != to.node {
                let update =
                    Message::new(src, dst, ByteSize::bytes(64), MsgClass::Migration).urgent();
                let _ = self.fabric.send(dump_done, update);
            }
        }
        let done_at = ctx.now + self.profile.vcpu_migration_cost;
        ctx.schedule_at(done_at, Event::MigrationDone { vcpu, to });
        self.stats.migrations += 1;
        self.stats.migration_time += self.profile.vcpu_migration_cost;
        true
    }

    fn migration_done(&mut self, ctx: &mut Ctx<'_, Event>, vcpu: VcpuId, to: Placement) {
        self.tracer.emit_with(|| TraceEvent::VcpuMigrateDone {
            at: ctx.now.as_nanos(),
            vcpu: vcpu.0,
            node: to.node.0,
        });
        let tracer = self.tracer.clone();
        self.pcpus.entry((to.node, to.pcpu)).or_insert_with(|| {
            let mut cpu = PsCpu::new(1.0);
            cpu.attach_tracer(tracer, cpu_trace_id(to.node, to.pcpu));
            cpu
        });
        let (stashed, resume, missed_step, missed_charge) = {
            let v = &mut self.vcpus[vcpu.index()];
            debug_assert_eq!(v.status, VcpuStatus::Migrating);
            v.node = to.node;
            v.pcpu = to.pcpu;
            (
                v.stashed_work.take(),
                v.resume_status,
                std::mem::take(&mut v.missed_step),
                v.missed_charge.take(),
            )
        };
        if self.profile.helper_thread_load > 0.0 {
            let load = self.profile.helper_thread_load;
            let now = ctx.now;
            self.pcpu(to.node, to.pcpu).set_background_load(now, load);
        }
        if let Some(rem) = stashed {
            self.vcpus[vcpu.index()].status = VcpuStatus::Computing;
            let now = ctx.now;
            let _ = self.pcpu(to.node, to.pcpu).add(now, vcpu.0 as u64, rem);
            self.reschedule_cpu(ctx, to.node, to.pcpu);
            return;
        }
        if let Some(work) = missed_charge {
            // The deferred CPU charge expired mid-migration: start it now
            // (after_cpu is still armed on the vCPU).
            let after =
                std::mem::replace(&mut self.vcpus[vcpu.index()].after_cpu, AfterCpu::Continue);
            self.vcpus[vcpu.index()].status = VcpuStatus::Ready;
            self.begin_compute(ctx, vcpu, work, after);
            return;
        }
        // Restore the pre-migration status; replay a missed step/wakeup.
        let v = &mut self.vcpus[vcpu.index()];
        v.status = resume;
        if missed_step {
            v.status = VcpuStatus::Ready;
            ctx.schedule_now(Event::VcpuStep(vcpu));
        }
        // For ready vCPUs without a missed step, the original wakeup event
        // is still queued and will arrive at the new placement.
    }
}

/// Extracts `(page, access)` pairs from plan touches.
fn touches_of(touches: &[virtio::plan::PageTouch]) -> Vec<(PageId, Access)> {
    touches.iter().map(|t| (t.page, t.access)).collect()
}

/// The node device-side touches run on (falls back to the device home).
fn device_node(
    plan: &IoPlan,
    net: Option<&VirtioNet>,
    blk: Option<&VirtioBlk>,
    is_net: bool,
) -> NodeId {
    plan.device_touches
        .first()
        .map(|t| t.node)
        .unwrap_or_else(|| {
            if is_net {
                net.map(|d| d.home()).unwrap_or_default()
            } else {
                blk.map(|d| d.home()).unwrap_or_default()
            }
        })
}

impl World for VmWorld {
    type Event = Event;

    fn handle(&mut self, ctx: &mut Ctx<'_, Event>, ev: Event) {
        match ev {
            Event::Start => {
                for i in 0..self.vcpus.len() {
                    ctx.schedule_now(Event::VcpuStep(VcpuId::from_usize(i)));
                    if let Some(interval) = self.timer_interval {
                        ctx.schedule_in(
                            interval,
                            Event::GuestTick {
                                vcpu: VcpuId::from_usize(i),
                            },
                        );
                    }
                }
                if let Some(client) = self.client.as_mut() {
                    let sends = client.model.start(ctx.now);
                    self.inject_client_sends(ctx, sends);
                }
            }
            Event::VcpuStep(v) => {
                let state = &mut self.vcpus[v.index()];
                if state.status == VcpuStatus::Migrating {
                    state.missed_step = true;
                } else {
                    self.step_vcpu(ctx, v);
                }
            }
            Event::CpuDone { node, pcpu, epoch } => {
                let done = {
                    let now = ctx.now;
                    self.pcpu(node, pcpu).on_completion_event(now, epoch)
                };
                if done.is_empty() {
                    return;
                }
                self.reschedule_cpu(ctx, node, pcpu);
                for task in done {
                    let vcpu = VcpuId::new(task as u32);
                    let after = {
                        let v = &mut self.vcpus[vcpu.index()];
                        debug_assert_eq!(v.status, VcpuStatus::Computing);
                        v.status = VcpuStatus::Ready;
                        std::mem::replace(&mut v.after_cpu, AfterCpu::Continue)
                    };
                    match after {
                        AfterCpu::Continue => {}
                        AfterCpu::DeliverLocal { to, msg } => {
                            let src = self.vcpus[vcpu.index()].node;
                            let dst = self.vcpus[to.index()].node;
                            if src == dst {
                                ctx.schedule_in(LOCAL_IPI, Event::LocalDeliver { vcpu: to, msg });
                            } else {
                                // The wakeup crosses the fabric as an IPI;
                                // the payload moves through DSM socket
                                // buffers already touched on the send side.
                                let m = Message::new(
                                    src,
                                    dst,
                                    ByteSize::bytes(64),
                                    MsgClass::Interrupt,
                                );
                                let d = self
                                    .fabric
                                    .send(ctx.now, m)
                                    .expect("vCPU nodes are validated at VM build");
                                ctx.schedule_at(
                                    d.deliver_at,
                                    Event::LocalDeliver { vcpu: to, msg },
                                );
                            }
                        }
                    }
                    self.step_vcpu(ctx, vcpu);
                }
            }
            Event::ChargeCpu { vcpu, work } => {
                let state = &mut self.vcpus[vcpu.index()];
                if state.status == VcpuStatus::Migrating {
                    state.missed_charge = Some(work);
                    return;
                }
                let after =
                    std::mem::replace(&mut self.vcpus[vcpu.index()].after_cpu, AfterCpu::Continue);
                self.begin_compute(ctx, vcpu, work, after);
            }
            Event::IpiDeliver { vcpu } => {
                let v = &mut self.vcpus[vcpu.index()];
                if v.status == VcpuStatus::BlockedIpi {
                    v.status = VcpuStatus::Ready;
                    self.step_vcpu(ctx, vcpu);
                } else if v.status == VcpuStatus::Migrating
                    && v.resume_status == VcpuStatus::BlockedIpi
                {
                    v.resume_status = VcpuStatus::Ready;
                    v.missed_step = true;
                } else {
                    v.pending_ipis += 1;
                }
            }
            Event::LocalDeliver { vcpu, msg } => {
                let v = &mut self.vcpus[vcpu.index()];
                // The receiver reads the socket buffer pages.
                let node = v.node;
                let bufs = self.mem.kernel.socket_buffer_pages();
                let touches: Vec<(PageId, Access)> = bufs
                    .into_iter()
                    .take(1)
                    .map(|p| (p, Access::Read))
                    .collect();
                let t = self
                    .mem
                    .access_batch(ctx.now, node, &touches, &mut self.fabric);
                let v = &mut self.vcpus[vcpu.index()];
                v.local_inbox.push_back(msg);
                if matches!(v.status, VcpuStatus::BlockedLocal | VcpuStatus::BlockedAny) {
                    let msg = v.local_inbox.pop_front().expect("just pushed");
                    v.delivered = Some(msg);
                    v.status = VcpuStatus::Ready;
                    if t > ctx.now {
                        ctx.schedule_at(t, Event::VcpuStep(vcpu));
                    } else {
                        self.step_vcpu(ctx, vcpu);
                    }
                } else if v.status == VcpuStatus::Migrating
                    && matches!(
                        v.resume_status,
                        VcpuStatus::BlockedLocal | VcpuStatus::BlockedAny
                    )
                {
                    let msg = v.local_inbox.pop_front().expect("just pushed");
                    v.delivered = Some(msg);
                    v.resume_status = VcpuStatus::Ready;
                    v.missed_step = true;
                }
            }
            Event::DevProcess {
                vcpu,
                queue,
                is_net,
                plan,
                conn,
            } => self.dev_process(ctx, vcpu, queue, is_net, *plan, conn),
            Event::IoComplete {
                vcpu,
                queue,
                is_net,
                guest_touches,
            } => self.io_complete(ctx, vcpu, queue, is_net, guest_touches),
            Event::ClientRxArrive {
                conn,
                bytes,
                target,
            } => self.client_rx_arrive(ctx, conn, bytes, target),
            Event::NetRxDeliver {
                vcpu,
                msg,
                queue,
                guest_touches,
            } => {
                if let Some(net) = self.net.as_mut() {
                    net.complete(queue);
                }
                let node = self.vcpus[vcpu.index()].node;
                let t = self.mem.access_batch(
                    ctx.now,
                    node,
                    &touches_of(&guest_touches),
                    &mut self.fabric,
                );
                let v = &mut self.vcpus[vcpu.index()];
                v.net_inbox.push_back(msg);
                if matches!(v.status, VcpuStatus::BlockedNet | VcpuStatus::BlockedAny) {
                    let msg = v.net_inbox.pop_front().expect("just pushed");
                    v.delivered = Some(msg);
                    v.status = VcpuStatus::Ready;
                    if t > ctx.now {
                        ctx.schedule_at(t, Event::VcpuStep(vcpu));
                    } else {
                        self.step_vcpu(ctx, vcpu);
                    }
                } else if v.status == VcpuStatus::Migrating
                    && matches!(
                        v.resume_status,
                        VcpuStatus::BlockedNet | VcpuStatus::BlockedAny
                    )
                {
                    let msg = v.net_inbox.pop_front().expect("just pushed");
                    v.delivered = Some(msg);
                    v.resume_status = VcpuStatus::Ready;
                    v.missed_step = true;
                }
            }
            Event::ClientDeliver { conn, bytes } => {
                if let Some(start) = self.client_pending.remove(&conn) {
                    let latency = ctx.now - start;
                    self.stats.request_latency.record_time(latency);
                    self.stats
                        .latency_series
                        .push(ctx.now, latency.as_millis_f64());
                    self.stats.completed_requests += 1;
                }
                if let Some(client) = self.client.as_mut() {
                    let sends = client.model.on_response(ctx.now, conn, bytes);
                    self.inject_client_sends(ctx, sends);
                }
            }
            Event::WakeVcpu(vcpu) => {
                let v = &mut self.vcpus[vcpu.index()];
                if v.status == VcpuStatus::Sleeping {
                    v.status = VcpuStatus::Ready;
                    self.step_vcpu(ctx, vcpu);
                } else if v.status == VcpuStatus::Migrating
                    && v.resume_status == VcpuStatus::Sleeping
                {
                    v.resume_status = VcpuStatus::Ready;
                    v.missed_step = true;
                }
            }
            Event::GuestTick { vcpu } => {
                let v = &self.vcpus[vcpu.index()];
                if v.status == VcpuStatus::Done {
                    return;
                }
                let node = v.node;
                // The tick handler touches hot kernel pages; its latency
                // is absorbed (a tick steals ~microseconds of vCPU time).
                let trace = self
                    .mem
                    .kernel
                    .op_trace(vcpu.index(), guest::KernelOp::TimerTick);
                let _ = self
                    .mem
                    .access_batch(ctx.now, node, &trace.touches, &mut self.fabric);
                if let Some(interval) = self.timer_interval {
                    ctx.schedule_in(interval, Event::GuestTick { vcpu });
                }
            }
            Event::MigrationDone { vcpu, to } => self.migration_done(ctx, vcpu, to),
        }
    }
}

/// Builder for a distributed VM simulation.
pub struct VmBuilder {
    profile: HypervisorProfile,
    nodes: usize,
    ram: ByteSize,
    placements: Vec<Placement>,
    programs: Vec<Box<dyn Program>>,
    net_home: Option<NodeId>,
    blk_home: Option<NodeId>,
    client: Option<ClientConfig>,
    timer_interval: Option<SimTime>,
    seed: u64,
}

impl VmBuilder {
    /// Starts a builder for a VM on a cluster of `nodes` machines.
    pub fn new(profile: HypervisorProfile, nodes: usize) -> Self {
        VmBuilder {
            profile,
            nodes,
            ram: ByteSize::gib(4),
            placements: Vec::new(),
            programs: Vec::new(),
            net_home: None,
            blk_home: None,
            client: None,
            timer_interval: None,
            seed: 0x5EED,
        }
    }

    /// Enables periodic guest timer ticks (CONFIG_HZ-style) on every
    /// vCPU. Each tick touches hot kernel pages — background DSM noise
    /// whose cost depends on the guest kernel layout.
    pub fn with_timer(mut self, interval: SimTime) -> Self {
        self.timer_interval = Some(interval);
        self
    }

    /// Sets guest RAM.
    pub fn ram(mut self, ram: ByteSize) -> Self {
        self.ram = ram;
        self
    }

    /// Sets the determinism seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a vCPU at `placement` running `program`.
    pub fn vcpu(mut self, placement: Placement, program: Box<dyn Program>) -> Self {
        self.placements.push(placement);
        self.programs.push(program);
        self
    }

    /// Attaches a virtio-net device homed on `node`.
    pub fn with_net(mut self, node: NodeId) -> Self {
        self.net_home = Some(node);
        self
    }

    /// Attaches a virtio-blk device homed on `node`.
    pub fn with_blk(mut self, node: NodeId) -> Self {
        self.blk_home = Some(node);
        self
    }

    /// Attaches an external client.
    pub fn with_client(mut self, client: ClientConfig) -> Self {
        self.client = Some(client);
        self
    }

    /// Builds the simulation.
    ///
    /// # Panics
    ///
    /// Panics if no vCPUs were added or a placement is out of range.
    pub fn build(self) -> VmSim {
        assert!(!self.placements.is_empty(), "VM needs at least one vCPU");
        for p in &self.placements {
            assert!(p.node.index() < self.nodes, "placement out of range");
        }
        let bootstrap = self.placements[0].node;
        let mut fabric = Fabric::homogeneous(
            self.nodes + usize::from(self.client.is_some()),
            self.profile.link,
        );
        let mut mem = VmMemory::new(&self.profile, self.placements.len(), self.ram, bootstrap);

        // Devices and their ring pages.
        let queues = self.placements.len();
        let net = self.net_home.map(|home| {
            let rings = mem.alloc.alloc("virtio-net.rings", 2 * queues as u64);
            let dev = DeviceConfig::new(home)
                .mode(self.profile.io_mode)
                .queues(queues)
                .rings_at(rings.first)
                .build_net();
            mem.register_pages(&dev.ring_pages(), home, PageClass::DeviceRing);
            dev
        });
        let blk = self.blk_home.map(|home| {
            let rings = mem.alloc.alloc("virtio-blk.rings", 2 * queues as u64);
            let dev = DeviceConfig::new(home)
                .mode(self.profile.io_mode)
                .queues(queues)
                .rings_at(rings.first)
                .build_blk();
            mem.register_pages(&dev.ring_pages(), home, PageClass::DeviceRing);
            dev
        });
        let rx_buffers = net.as_ref().map(|dev| {
            let r = mem.alloc.alloc("net.rxbuf", 1024);
            mem.register_pages(
                &r.iter().collect::<Vec<_>>(),
                dev.home(),
                PageClass::Private,
            );
            r
        });

        // Client link overrides.
        let client = self.client.map(|mut c| {
            let client_node = NodeId::from_usize(self.nodes);
            let home = net
                .as_ref()
                .map(|d| d.home())
                .expect("client requires a net device");
            fabric.set_link(client_node, home, c.link);
            fabric.set_link(home, client_node, c.link);
            c.node = client_node;
            c
        });

        // pCPUs and helper threads.
        let mut pcpus: HashMap<(NodeId, u32), PsCpu> = HashMap::new();
        for p in &self.placements {
            pcpus
                .entry((p.node, p.pcpu))
                .or_insert_with(|| PsCpu::new(1.0));
        }
        if self.profile.helper_thread_load > 0.0 {
            for cpu in pcpus.values_mut() {
                cpu.set_background_load(SimTime::ZERO, self.profile.helper_thread_load);
            }
        }

        let root_rng = DetRng::new(self.seed);
        let vcpus: Vec<VcpuState> = self
            .placements
            .iter()
            .zip(self.programs)
            .enumerate()
            .map(|(i, (p, program))| VcpuState {
                node: p.node,
                pcpu: p.pcpu,
                program,
                status: VcpuStatus::Ready,
                net_inbox: VecDeque::new(),
                local_inbox: VecDeque::new(),
                pending_ipis: 0,
                delivered: None,
                after_cpu: AfterCpu::Continue,
                retry_op: None,
                stashed_work: None,
                resume_status: VcpuStatus::Ready,
                missed_step: false,
                missed_charge: None,
                finish: None,
                rng: root_rng.derive(i as u64),
            })
            .collect();

        let stats = VmStats::new(vcpus.len());
        let console = DeviceConfig::new(bootstrap).build_console();
        let world = VmWorld {
            profile: self.profile,
            fabric,
            mem,
            pcpus,
            vcpus,
            net,
            blk,
            console,
            rx_buffers,
            rx_cursor: 0,
            client,
            client_pending: HashMap::new(),
            barriers: HashMap::new(),
            timer_interval: self.timer_interval,
            tracer: Tracer::disabled(),
            stats,
        };
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, Event::Start);
        VmSim { engine, world }
    }
}

/// A ready-to-run VM simulation.
pub struct VmSim {
    /// The event loop.
    pub engine: Engine<Event>,
    /// The VM world.
    pub world: VmWorld,
}

impl VmSim {
    /// Runs until every program finishes (and the client drains);
    /// returns the completion time of the last vCPU.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains while programs are still blocked —
    /// a deadlock in the workload definition.
    pub fn run(&mut self) -> SimTime {
        while !self.world.finished() {
            if !self.engine.step(&mut self.world) {
                panic!(
                    "event queue drained but the VM is not finished \
                     (deadlocked workload?)"
                );
            }
        }
        self.world
            .stats
            .vcpu_finish
            .iter()
            .flatten()
            .copied()
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Runs until the given horizon (events after it stay queued).
    pub fn run_until(&mut self, until: SimTime) {
        self.engine.run_until(&mut self.world, until);
    }

    /// Runs until the external client completes its load (for VMs whose
    /// server programs loop forever); returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains before the client finishes, or if
    /// no client is attached.
    pub fn run_client(&mut self) -> SimTime {
        assert!(
            self.world.client.is_some(),
            "run_client on a VM without a client"
        );
        while !self.world.client_done() {
            assert!(
                self.engine.step(&mut self.world),
                "event queue drained before the client finished"
            );
        }
        self.engine.now()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Requests a vCPU migration at the current time; returns false if the
    /// profile lacks mobility.
    pub fn migrate_vcpu(&mut self, vcpu: VcpuId, to: Placement) -> bool {
        let mut ctx = self.engine.external_ctx();
        self.world.request_migration(&mut ctx, vcpu, to)
    }

    /// Turns on structured tracing with a ring buffer of `capacity` events
    /// and returns a handle sharing the sink (snapshot/export from it after
    /// the run).
    pub fn enable_tracing(&mut self, capacity: usize) -> Tracer {
        let tracer = Tracer::ring(capacity);
        self.world.attach_tracer(tracer.clone());
        tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FixedCompute, Scripted};

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn single_vcpu_compute_runs_at_full_speed() {
        let mut sim = VmBuilder::new(HypervisorProfile::fragvisor(), 1)
            .vcpu(Placement::new(0, 0), Box::new(FixedCompute::new(ms(10))))
            .build();
        let done = sim.run();
        assert_eq!(done, ms(10));
    }

    #[test]
    fn overcommit_shares_the_pcpu() {
        // Four equal programs on one pCPU: each takes 4x as long.
        let mut b = VmBuilder::new(HypervisorProfile::single_machine(), 1);
        for _ in 0..4 {
            b = b.vcpu(Placement::new(0, 0), Box::new(FixedCompute::new(ms(10))));
        }
        let done = b.build().run();
        assert_eq!(done, ms(40));
    }

    #[test]
    fn distributed_compute_runs_in_parallel() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 4);
        for i in 0..4 {
            b = b.vcpu(Placement::new(i, 0), Box::new(FixedCompute::new(ms(10))));
        }
        let done = b.build().run();
        assert_eq!(done, ms(10));
    }

    #[test]
    fn giantvm_helper_threads_slow_compute() {
        let mut b = VmBuilder::new(HypervisorProfile::giantvm(), 2);
        for i in 0..2 {
            b = b.vcpu(Placement::new(i, 0), Box::new(FixedCompute::new(ms(10))));
        }
        let done = b.build().run();
        assert!(done > ms(10), "helper threads must steal cycles: {done}");
    }

    #[test]
    fn barrier_synchronizes() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
        b = b.vcpu(
            Placement::new(0, 0),
            Box::new(Scripted::new([
                Op::Compute(ms(1)),
                Op::Barrier { id: 1, parties: 2 },
                Op::Compute(ms(1)),
            ])),
        );
        b = b.vcpu(
            Placement::new(1, 0),
            Box::new(Scripted::new([
                Op::Compute(ms(5)),
                Op::Barrier { id: 1, parties: 2 },
                Op::Compute(ms(1)),
            ])),
        );
        let done = b.build().run();
        // Slow vCPU reaches the barrier at 5ms; both finish at 6ms.
        assert_eq!(done, ms(6));
    }

    #[test]
    fn ipi_wakeup() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
        b = b.vcpu(
            Placement::new(0, 0),
            Box::new(Scripted::new([
                Op::Compute(ms(2)),
                Op::SendIpi(VcpuId::new(1)),
            ])),
        );
        b = b.vcpu(Placement::new(1, 0), Box::new(Scripted::new([Op::WaitIpi])));
        let mut sim = b.build();
        let done = sim.run();
        assert!(done >= ms(2));
        assert_eq!(sim.world.stats.ipis.events, 1);
    }

    #[test]
    fn local_send_recv_across_nodes() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
        b = b.vcpu(
            Placement::new(0, 0),
            Box::new(Scripted::new([Op::LocalSend {
                to: VcpuId::new(1),
                tag: 7,
                bytes: 4096,
            }])),
        );
        b = b.vcpu(
            Placement::new(1, 0),
            Box::new(Scripted::new([Op::LocalRecv])),
        );
        let mut sim = b.build();
        let done = sim.run();
        assert!(done > SimTime::ZERO);
        // Socket buffers crossed the DSM: at least one fault occurred.
        assert!(sim.world.mem.dsm.stats().total_faults() > 0);
    }

    #[test]
    fn touch_batch_remote_pages_takes_time() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
        // vCPU0 creates pages; vCPU1 then reads them remotely.
        let touches: Vec<(PageId, Access)> = (0..32)
            .map(|i| (PageId::new(500_000 + i), Access::Write))
            .collect();
        let reads: Vec<(PageId, Access)> = (0..32)
            .map(|i| (PageId::new(500_000 + i), Access::Read))
            .collect();
        b = b.vcpu(
            Placement::new(0, 0),
            Box::new(Scripted::new([
                Op::TouchBatch(touches),
                Op::Barrier { id: 1, parties: 2 },
            ])),
        );
        b = b.vcpu(
            Placement::new(1, 0),
            Box::new(Scripted::new([
                Op::Barrier { id: 1, parties: 2 },
                Op::TouchBatch(reads),
            ])),
        );
        let mut sim = b.build();
        let done = sim.run();
        // 32 remote read faults at ~8us each.
        assert!(done > SimTime::from_micros(200), "{done}");
        assert_eq!(sim.world.mem.dsm.stats().read_faults, 32);
    }

    #[test]
    fn blk_io_roundtrip_local_and_remote() {
        let run = |vcpu_node: u32| -> SimTime {
            let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2).with_blk(NodeId::new(0));
            b = b.vcpu(
                Placement::new(vcpu_node, 0),
                Box::new(Scripted::new([Op::BlkIo {
                    bytes: ByteSize::mib(1),
                    write: false,
                    tmpfs: false,
                    buffer: (0..4).map(|i| PageId::new(600_000 + i)).collect(),
                }])),
            );
            b.build().run()
        };
        let local = run(0);
        let remote = run(1);
        // 1 MiB at 500 MB/s ≈ 2.1ms dominates; delegation adds overhead.
        assert!(local > SimTime::from_millis(2), "{local}");
        assert!(remote > local, "remote {remote} vs local {local}");
    }

    #[test]
    fn vcpu_migration_moves_execution() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
        b = b.vcpu(Placement::new(0, 0), Box::new(FixedCompute::new(ms(50))));
        let mut sim = b.build();
        sim.run_until(ms(10));
        assert!(sim.migrate_vcpu(VcpuId::new(0), Placement::new(1, 0)));
        let done = sim.run();
        assert_eq!(sim.world.placement_of(VcpuId::new(0)).node, NodeId::new(1));
        // 10ms before + ~86us migration + 40ms remaining.
        assert!(done >= ms(50), "{done}");
        assert!(done < ms(51), "{done}");
        assert_eq!(sim.world.stats.migrations, 1);
    }

    #[test]
    fn giantvm_cannot_migrate() {
        let mut b = VmBuilder::new(HypervisorProfile::giantvm(), 2);
        b = b.vcpu(Placement::new(0, 0), Box::new(FixedCompute::new(ms(5))));
        let mut sim = b.build();
        sim.run_until(ms(1));
        assert!(!sim.migrate_vcpu(VcpuId::new(0), Placement::new(1, 0)));
    }

    #[test]
    fn sleep_wakes_on_time() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 1);
        b = b.vcpu(
            Placement::new(0, 0),
            Box::new(Scripted::new([Op::Sleep(ms(7)), Op::Compute(ms(1))])),
        );
        let done = b.build().run();
        assert_eq!(done, ms(8));
    }
}
