//! Distributed-VM machinery shared by FragVisor and its baselines.
//!
//! This crate assembles the substrates (`comm`, `dsm`, `virtio`, `guest`,
//! `cluster`, `sim-core`) into a running distributed virtual machine:
//!
//! * [`profile::HypervisorProfile`] — the cost/feature model separating
//!   FragVisor from GiantVM (kernel- vs user-space DSM, helper threads,
//!   multiqueue/DSM-bypass availability, guest optimizations, mobility).
//! * [`program::Program`] — the interface guest workloads implement: a
//!   stream of [`program::Op`]s (compute bursts, page touches, kernel
//!   operations, I/O, barriers) executed by a vCPU.
//! * [`vm::VmBuilder`]/[`vm::VmWorld`] — the simulator: vCPUs placed on
//!   pCPUs of cluster nodes, guest memory behind the DSM, delegated VirtIO
//!   devices, an optional external client, plus vCPU migration and
//!   distributed checkpoint/restart.
//! * [`failure::FailureConfig`] — the heartbeat failure detector and its
//!   recovery policy, driving live recovery from scripted node crashes
//!   ([`sim_core::fault::FaultPlan`]) via DSM quarantine + checkpoint
//!   restore, or proactive drains when the failure is predicted.
//!
//! A VM whose vCPUs all sit on one node degenerates to a classic
//! single-machine VM (the *overcommit* baseline); a VM with one vCPU per
//! node and mobility enabled is FragVisor's Aggregate VM; the same without
//! mobility and with the user-space cost profile is GiantVM.

#![warn(missing_docs)]

pub mod boot;
pub mod checkpoint;
pub mod elastic;
pub mod failure;
pub mod fleet;
pub mod memory;
pub mod profile;
pub mod program;
pub mod reliability;
pub mod stats;
pub mod vm;

pub use elastic::{
    MemoryConfig, MemoryPressure, MemoryReclaimer, PressureThresholds, ReclaimCounters,
    ReclaimPolicy,
};
pub use failure::FailureConfig;
pub use fleet::{FleetConfig, FleetReport, FleetSim, TenantSpec, TenantStats};
pub use memory::VmMemory;
pub use profile::HypervisorProfile;
pub use program::{GuestMsg, Op, ProgCtx, Program};
pub use stats::VmStats;
pub use virtio::VcpuId;
pub use vm::{
    ClientConfig, ClientModel, ClientSend, Event, Placement, VmBuilder, VmError, VmSim, VmWorld,
};
