//! VM memory: guest layout + DSM + the fault executor.
//!
//! [`VmMemory`] binds the guest memory model to the DSM directory and
//! knows how to *cost* a fault: it plays the [`dsm::FaultPlan`] message
//! choreography out on the [`comm::Fabric`] (so DSM traffic occupies real
//! link bandwidth) and returns the completion time.

use comm::{Fabric, FabricError, Message, MsgClass, NodeId};
use dsm::{Access, Dsm, FaultKind, FaultPlan, PageClass, PageId, Resolution};
use guest::memory::{Region, RegionAllocator};
use guest::{GuestConfig, KernelPages};
use sim_core::time::SimTime;
use sim_core::trace::TraceEvent;
use sim_core::units::ByteSize;

use crate::elastic::{
    ElasticParams, ElasticState, MemoryConfig, MemoryPressure, ReclaimCounters, ReclaimCtx,
    ReclaimRequest,
};
use crate::profile::HypervisorProfile;

/// Size of a DSM control message (request, invalidation, ack).
const DSM_CTRL: ByteSize = ByteSize::bytes(64);

/// Page payload message: page plus header.
pub(crate) const DSM_PAGE: ByteSize = ByteSize::bytes(4096 + 64);

/// Cost of installing a received page/permission into the EPT.
const INSTALL_COST: SimTime = SimTime::from_nanos(500);

/// Retry backoff when a fault hits a page with an in-flight transaction.
///
/// Popcorn's DSM NACKs concurrent ownership requests; the loser backs off
/// and refaults. Under write contention this dominates the per-operation
/// cost (it is why the Figure-5 max-sharing traffic is only a few MB/s).
const CONTENTION_BACKOFF: SimTime = SimTime::from_micros(15);

/// Stall charged when a DSM protocol message cannot reach its peer at
/// all (the peer's slice is dead): the faulting vCPU spins until the
/// failure detector quarantines and re-homes the page.
const DEAD_STALL: SimTime = SimTime::from_micros(500);

/// DSM protocol retransmissions before giving up on a message.
const DSM_SEND_ATTEMPTS: u32 = 3;

/// Sends one DSM protocol message, riding out transient link loss.
///
/// The DSM runs its own timeout/retransmit on the bulk tier (the fabric
/// only acks priority classes): a [`FabricError::Dropped`] verdict is
/// retried after [`CONTENTION_BACKOFF`], up to [`DSM_SEND_ATTEMPTS`]
/// times. A dead endpoint (or exhausted retries) returns the
/// [`DEAD_STALL`] completion instead — the access stalls rather than
/// panicking, and recovery re-homes the page.
pub(crate) fn dsm_send(fabric: &mut Fabric, at: SimTime, msg: Message) -> SimTime {
    let mut t = at;
    for _ in 0..DSM_SEND_ATTEMPTS {
        match fabric.send(t, msg) {
            Ok(d) => return d.deliver_at,
            Err(FabricError::Dropped { .. }) => t += CONTENTION_BACKOFF,
            Err(_) => return t + DEAD_STALL,
        }
    }
    t + DEAD_STALL
}

/// The guest memory subsystem of one VM.
#[derive(Debug)]
pub struct VmMemory {
    /// The coherence directory.
    pub dsm: Dsm,
    /// The pseudo-physical region allocator.
    pub alloc: RegionAllocator,
    /// The guest kernel's page footprint.
    pub kernel: KernelPages,
    guest_config: GuestConfig,
    bootstrap: NodeId,
    fault_handler_cpu: SimTime,
    /// Pressure tracking + reclaim policy, when configured.
    elastic: Option<Box<ElasticState>>,
}

impl VmMemory {
    /// Lays out guest memory for a VM with `vcpus` vCPUs and `ram` bytes,
    /// booted on `bootstrap`. External callers go through
    /// [`MemoryConfig::build`].
    pub(crate) fn new(
        profile: &HypervisorProfile,
        vcpus: usize,
        ram: ByteSize,
        bootstrap: NodeId,
    ) -> Self {
        let mut alloc = RegionAllocator::new(ram);
        let kernel = KernelPages::layout(&mut alloc, vcpus, profile.guest.optimized_layout);
        let mut dsm = Dsm::new(profile.dsm);
        kernel.register(&mut dsm, bootstrap);
        // A NUMA-aware guest only helps if the hypervisor actually exposes
        // runtime NUMA topology updates.
        let mut guest_config = profile.guest;
        guest_config.numa_aware &= profile.numa_updates;
        VmMemory {
            dsm,
            alloc,
            kernel,
            guest_config,
            bootstrap,
            fault_handler_cpu: profile.fault_handler_cpu,
            elastic: None,
        }
    }

    /// Enables memory elasticity per `cfg`: requires both a
    /// [`MemoryConfig::node_budget`] and a [`MemoryConfig::policy`], and
    /// is a no-op (returning `false`) otherwise. [`MemoryConfig::build`]
    /// calls this; a VM built through another path (e.g. the canned
    /// scenarios) can call it on `sim.world.mem` before running.
    pub fn enable_elasticity(&mut self, cfg: &MemoryConfig) -> bool {
        let (Some(budget), Some(policy)) = (cfg.budget, cfg.policy) else {
            return false;
        };
        let params = ElasticParams {
            budget_pages: budget.pages_4k(),
            thresholds: cfg.thresholds,
            nodes: cfg.nodes,
            swap_out: cfg.swap_out,
            swap_in: cfg.swap_in,
            balloon_share: cfg.balloon_share,
        };
        self.elastic = Some(Box::new(ElasticState::new(params, policy)));
        true
    }

    /// Reclaim counters, present when elasticity is enabled.
    pub fn reclaim_counters(&self) -> Option<&ReclaimCounters> {
        self.elastic.as_deref().map(|e| &e.book.counters)
    }

    /// True if `page` currently sits in the swap tier.
    pub fn page_swapped(&self, page: PageId) -> bool {
        self.elastic
            .as_deref()
            .is_some_and(|e| e.book.swapped.contains_key(&page))
    }

    /// True if `page` was discarded by balloon/deflate and has not
    /// refaulted yet.
    pub fn page_released(&self, page: PageId) -> bool {
        self.elastic
            .as_deref()
            .is_some_and(|e| e.book.released.contains(&page))
    }

    /// `node`'s current pressure level (`Normal` when elasticity is off).
    pub fn pressure_of(&self, node: NodeId) -> MemoryPressure {
        let Some(el) = self.elastic.as_deref() else {
            return MemoryPressure::Normal;
        };
        let resident = self
            .dsm
            .pages_owned_by(node)
            .saturating_sub(el.book.swapped_on(node));
        el.params.thresholds.level(resident, el.params.budget_pages)
    }

    /// The node the guest booted on (home of kernel pages).
    pub fn bootstrap(&self) -> NodeId {
        self.bootstrap
    }

    /// The guest configuration in force.
    pub fn guest_config(&self) -> GuestConfig {
        self.guest_config
    }

    /// Allocates an application region and registers its pages, homed
    /// according to the guest's NUMA policy for a task on `vcpu_node`.
    pub fn alloc_app_region(
        &mut self,
        name: &str,
        pages: u64,
        vcpu_node: NodeId,
        class: PageClass,
    ) -> Region {
        let region = self.alloc.alloc(name, pages);
        let home = guest::alloc_home(self.guest_config, vcpu_node, self.bootstrap);
        for p in region.iter() {
            self.dsm.ensure_page(p, home, class);
        }
        region
    }

    /// Registers a large at-rest dataset homed on `node` without creating
    /// per-page directory entries (bulk accounting only). Use for the
    /// multi-GiB resident sets of checkpoint experiments.
    pub fn register_resident_dataset(
        &mut self,
        name: &str,
        bytes: ByteSize,
        node: NodeId,
    ) -> Region {
        let region = self.alloc.alloc_bytes(name, bytes);
        self.dsm.register_bulk(node, region.pages);
        region
    }

    /// Registers pre-existing pages (e.g. device rings) with a class.
    pub fn register_pages(&mut self, pages: &[PageId], home: NodeId, class: PageClass) {
        for &p in pages {
            self.dsm.ensure_page(p, home, class);
        }
    }

    /// Performs one access by `node`, playing any fault out on `fabric`.
    ///
    /// Returns the completion time (`now` for hits). Unknown pages are
    /// first-touch allocated per the guest NUMA policy.
    pub fn access(
        &mut self,
        now: SimTime,
        node: NodeId,
        page: PageId,
        access: Access,
        fabric: &mut Fabric,
    ) -> SimTime {
        // The directory is untimed; stamp its trace events with the
        // triggering access's time.
        self.dsm.set_clock(now);
        // An epoch-fenced node gets nothing — no swap-in, no first-touch
        // allocation, no directory transition. The access stalls like a
        // send to a dead peer and the guest retries after the stall.
        if self.dsm.is_fenced(node) {
            // Resolves to Rejected and emits the StaleEpochRejected event.
            let _ = self.dsm.access(node, page, access);
            return now + DEAD_STALL;
        }
        let mut t = now;
        if let Some(el) = self.elastic.as_deref_mut() {
            // A swapped-out page comes back from the swap tier before the
            // directory may even look at it (the auditor enforces the
            // swap-in-before-touch ordering).
            if let Some(home) = el.book.swapped.remove(&page) {
                let at = now.as_nanos();
                let pg = page.index() as u64;
                self.dsm.tracer().emit_with(|| TraceEvent::PageSwapIn {
                    at,
                    page: pg,
                    node: home.0,
                });
                el.book.bump_swapped(home, -1);
                el.book.counters.pages_swapped_in += 1;
                t += el.params.swap_in + INSTALL_COST;
            }
            // A ballooned/deflated page refaults: charge the handler
            // re-entry; the first-touch path below re-creates the page.
            if el.book.released.remove(&page) {
                el.book.balloon_outstanding = el.book.balloon_outstanding.saturating_sub(1);
                el.book.counters.refaults += 1;
                t += self.fault_handler_cpu + INSTALL_COST;
            }
        }
        if !self.dsm.contains(page) {
            let home = guest::alloc_home(self.guest_config, node, self.bootstrap);
            self.dsm.ensure_page(page, home, PageClass::Private);
            // A non-local first touch immediately faults below.
        }
        let done = match self.dsm.access(node, page, access) {
            Resolution::Hit => t,
            Resolution::Fault(plan) => self.execute_fault(t, node, &plan, fabric),
            // The node was fenced between the check above and the access
            // (impossible today — fencing happens between events — but
            // harmless to handle the same way).
            Resolution::Rejected => t + DEAD_STALL,
        };
        self.sample_pressure(done, node, fabric)
    }

    /// Samples the accessing node's pressure after a resolved access and
    /// runs direct reclaim synchronously when it crosses the high
    /// watermark; returns the (possibly stalled) completion time.
    fn sample_pressure(&mut self, done: SimTime, node: NodeId, fabric: &mut Fabric) -> SimTime {
        let VmMemory {
            dsm,
            alloc,
            elastic,
            ..
        } = self;
        let Some(el) = elastic.as_deref_mut() else {
            return done;
        };
        let resident = dsm
            .pages_owned_by(node)
            .saturating_sub(el.book.swapped_on(node));
        let budget = el.params.budget_pages;
        let level = el.params.thresholds.level(resident, budget);
        let slot = el.level_slot(node);
        if level != *slot {
            *slot = level;
            let at = done.as_nanos();
            dsm.tracer().emit_with(|| TraceEvent::PressureChange {
                at,
                node: node.0,
                level: level.label(),
                resident,
                budget,
            });
        }
        if level < MemoryPressure::High {
            return done;
        }
        // Direct reclaim: free enough to get back below the moderate
        // watermark, the stall charged to the faulting vCPU.
        let floor = (el.params.thresholds.moderate * budget as f64) as u64;
        let req = ReclaimRequest {
            pressure: level,
            target_pages: resident.saturating_sub(floor).max(1),
        };
        dsm.set_clock(done);
        let ElasticState {
            params,
            reclaimer,
            book,
            ..
        } = el;
        let mut ctx = ReclaimCtx {
            now: done,
            node,
            dsm,
            alloc,
            fabric,
            book,
            params,
        };
        let outcome = reclaimer.reclaim(&req, &mut ctx);
        book.counters.pressure_stalls += 1;
        book.counters.reclaim_latency += outcome.latency;
        done + outcome.latency
    }

    /// Performs a batch of accesses back-to-back, returning the final
    /// completion time.
    ///
    /// Runs of consecutive pages with the same access kind — the
    /// sequential-scan shape the workloads emit — resolve through
    /// [`Dsm::access_batch`] in one directory pass per run, with the
    /// fault plans played out in page order afterwards. Completion times
    /// and protocol statistics are identical to the per-touch path
    /// (directory transitions are untimed, hits cost nothing, and each
    /// fault executes from the previous fault's completion exactly as the
    /// sequential loop would); the only observable difference is that
    /// traced hit runs aggregate into one `DsmHitBatch` event. With
    /// elasticity enabled the per-touch path is used unconditionally:
    /// swap-in, refault charging and pressure sampling are per-access.
    pub fn access_batch(
        &mut self,
        now: SimTime,
        node: NodeId,
        touches: &[(PageId, Access)],
        fabric: &mut Fabric,
    ) -> SimTime {
        let mut t = now;
        if self.elastic.is_some() {
            for &(page, access) in touches {
                t = self.access(t, node, page, access, fabric);
            }
            return t;
        }
        let home = guest::alloc_home(self.guest_config, node, self.bootstrap);
        let mut i = 0;
        while i < touches.len() {
            let (start, access) = touches[i];
            let mut len = 1u32;
            while i + (len as usize) < touches.len() {
                let (p, a) = touches[i + len as usize];
                if a != access || p.0 != start.0.wrapping_add(len) {
                    break;
                }
                len += 1;
            }
            i += len as usize;
            if len == 1 {
                t = self.access(t, node, start, access, fabric);
                continue;
            }
            self.dsm.set_clock(t);
            let out =
                self.dsm
                    .access_batch(node, start, len, access, PageClass::Private, Some(home));
            for plan in &out.faults {
                t = self.execute_fault(t, node, plan, fabric);
            }
            // Fenced-node batches resolve to per-page rejections; each
            // stalls like its sequential counterpart.
            t += SimTime::from_nanos(DEAD_STALL.as_nanos() * out.rejected);
        }
        t
    }

    /// Plays out a fault's message choreography; returns completion time.
    fn execute_fault(
        &mut self,
        now: SimTime,
        node: NodeId,
        plan: &FaultPlan,
        fabric: &mut Fabric,
    ) -> SimTime {
        // Serialize behind any in-flight transaction on the same page
        // (NACK + retry when we lose the race), then charge the local
        // handler entry.
        let busy = self.dsm.busy_until(plan.page);
        let t0 = if now < busy {
            busy + CONTENTION_BACKOFF + self.fault_handler_cpu
        } else {
            now + self.fault_handler_cpu
        };
        let done = match &plan.kind {
            FaultKind::ReadRemote { owner } => {
                let req_at = dsm_send(
                    fabric,
                    t0,
                    Message::new(node, *owner, DSM_CTRL, MsgClass::Dsm),
                );
                let serve = req_at + remote_handler_of(self.fault_handler_cpu);
                // Prefetched pages ride the same response message.
                let resp_size =
                    ByteSize::bytes(DSM_PAGE.as_u64() + 4096 * plan.prefetched.len() as u64);
                let resp_at = dsm_send(
                    fabric,
                    serve,
                    Message::new(*owner, node, resp_size, MsgClass::Dsm),
                );
                resp_at + INSTALL_COST
            }
            FaultKind::Upgrade { invalidate } => {
                if invalidate.is_empty() {
                    t0 + INSTALL_COST
                } else if plan.contextual {
                    // Contextual DSM: the invalidation is piggybacked on a
                    // TLB-shootdown IPI the guest already sends; the
                    // faulting vCPU does not wait for acks.
                    for &s in invalidate {
                        let _ = fabric.send(t0, Message::new(node, s, DSM_CTRL, MsgClass::Dsm));
                    }
                    t0 + INSTALL_COST
                } else {
                    // Invalidate every sharer and collect acks.
                    let mut done = t0;
                    for &s in invalidate {
                        let inv_at =
                            dsm_send(fabric, t0, Message::new(node, s, DSM_CTRL, MsgClass::Dsm));
                        let ack_at = inv_at + remote_handler_of(self.fault_handler_cpu);
                        let ack = dsm_send(
                            fabric,
                            ack_at,
                            Message::new(s, node, DSM_CTRL, MsgClass::Dsm),
                        );
                        done = done.max(ack);
                    }
                    done + INSTALL_COST
                }
            }
            FaultKind::WriteRemote { owner, invalidate } => {
                let req_at = dsm_send(
                    fabric,
                    t0,
                    Message::new(node, *owner, DSM_CTRL, MsgClass::Dsm),
                );
                let at_owner = req_at + remote_handler_of(self.fault_handler_cpu);
                let ready = if invalidate.is_empty() || plan.contextual {
                    if plan.contextual {
                        // Fire-and-forget piggybacked invalidations.
                        for &s in invalidate {
                            let _ = fabric
                                .send(at_owner, Message::new(*owner, s, DSM_CTRL, MsgClass::Dsm));
                        }
                    }
                    at_owner
                } else {
                    let mut acks = at_owner;
                    for &s in invalidate {
                        let inv_at = dsm_send(
                            fabric,
                            at_owner,
                            Message::new(*owner, s, DSM_CTRL, MsgClass::Dsm),
                        );
                        let ack_at = inv_at + remote_handler_of(self.fault_handler_cpu);
                        let ack = dsm_send(
                            fabric,
                            ack_at,
                            Message::new(s, *owner, DSM_CTRL, MsgClass::Dsm),
                        );
                        acks = acks.max(ack);
                    }
                    acks
                };
                let resp_at = dsm_send(
                    fabric,
                    ready,
                    Message::new(*owner, node, DSM_PAGE, MsgClass::Dsm),
                );
                resp_at + INSTALL_COST
            }
        };
        let done = if plan.dirty_bit_msg {
            // Redundant EPT dirty-bit bookkeeping (vanilla guest): one more
            // control message plus handler work.
            let target = match &plan.kind {
                FaultKind::ReadRemote { owner } | FaultKind::WriteRemote { owner, .. } => *owner,
                FaultKind::Upgrade { .. } => self.bootstrap,
            };
            if target != node {
                let _ = fabric.send(done, Message::new(node, target, DSM_CTRL, MsgClass::Dsm));
            }
            done + SimTime::from_micros(1)
        } else {
            done
        };
        self.dsm.set_busy(plan.page, done);
        for &p in &plan.prefetched {
            self.dsm.set_busy(p, done);
        }
        done
    }
}

/// Remote-side handler cost from the local handler cost.
fn remote_handler_of(local: SimTime) -> SimTime {
    SimTime::from_nanos(local.as_nanos() / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::LinkProfile;

    fn setup(profile: HypervisorProfile) -> (VmMemory, Fabric) {
        let mem = VmMemory::new(&profile, 4, ByteSize::gib(4), NodeId::new(0));
        let fabric = Fabric::homogeneous(4, profile.link);
        (mem, fabric)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn hit_costs_nothing() {
        let (mut mem, mut fab) = setup(HypervisorProfile::fragvisor());
        let r = mem.alloc_app_region("a", 4, n(0), PageClass::Private);
        let t = mem.access(SimTime::ZERO, n(0), r.page(0), Access::Write, &mut fab);
        assert_eq!(t, SimTime::ZERO);
        assert_eq!(fab.messages_sent(), 0);
    }

    #[test]
    fn remote_read_fault_cost_in_popcorn_range() {
        let (mut mem, mut fab) = setup(HypervisorProfile::fragvisor());
        let r = mem.alloc_app_region("a", 4, n(0), PageClass::Private);
        let t = mem.access(SimTime::ZERO, n(1), r.page(0), Access::Read, &mut fab);
        let us = t.as_micros_f64();
        // Kernel-space DSM read faults are O(10 µs) on this hardware.
        assert!((5.0..20.0).contains(&us), "fault took {t}");
        assert_eq!(fab.messages_sent(), 2);
    }

    #[test]
    fn giantvm_faults_cost_more() {
        let (mut mem_f, mut fab_f) = setup(HypervisorProfile::fragvisor());
        let (mut mem_g, mut fab_g) = setup(HypervisorProfile::giantvm());
        let rf = mem_f.alloc_app_region("a", 4, n(0), PageClass::Private);
        let rg = mem_g.alloc_app_region("a", 4, n(0), PageClass::Private);
        let tf = mem_f.access(SimTime::ZERO, n(1), rf.page(0), Access::Read, &mut fab_f);
        let tg = mem_g.access(SimTime::ZERO, n(1), rg.page(0), Access::Read, &mut fab_g);
        assert!(
            tg.as_nanos() as f64 > tf.as_nanos() as f64 * 2.0,
            "giantvm {tg} vs fragvisor {tf}"
        );
    }

    #[test]
    fn write_remote_with_sharers_invalidate_round() {
        let (mut mem, mut fab) = setup(HypervisorProfile::fragvisor());
        let r = mem.alloc_app_region("a", 1, n(0), PageClass::Private);
        let p = r.page(0);
        // Nodes 1 and 2 read-share the page.
        let t1 = mem.access(SimTime::ZERO, n(1), p, Access::Read, &mut fab);
        let t2 = mem.access(t1, n(2), p, Access::Read, &mut fab);
        // Node 3 writes: request → owner(0), invalidate {1,2}, transfer.
        let base = fab.messages_sent();
        let t3 = mem.access(t2, n(3), p, Access::Write, &mut fab);
        // req + 2 inval + 2 ack + page = 6 messages.
        assert_eq!(fab.messages_sent() - base, 6);
        assert!(t3 > t2);
    }

    #[test]
    fn contextual_dsm_skips_ack_round_for_page_tables() {
        let profile = HypervisorProfile::fragvisor();
        let (mut mem, mut fab) = setup(profile);
        let pt = mem.alloc.alloc("pt-extra", 1);
        mem.register_pages(&[pt.page(0)], n(0), PageClass::PageTable);
        let data = mem.alloc.alloc("data-extra", 1);
        mem.register_pages(&[data.page(0)], n(0), PageClass::KernelData);
        // Create two sharers of each page.
        for p in [pt.page(0), data.page(0)] {
            let _ = mem.access(SimTime::ZERO, n(1), p, Access::Read, &mut fab);
            let _ = mem.access(SimTime::ZERO, n(2), p, Access::Read, &mut fab);
        }
        let t_pt = {
            let start = SimTime::from_millis(1);
            mem.access(start, n(0), pt.page(0), Access::Write, &mut fab) - start
        };
        let t_data = {
            let start = SimTime::from_millis(2);
            mem.access(start, n(0), data.page(0), Access::Write, &mut fab) - start
        };
        assert!(
            t_pt.as_nanos() * 2 < t_data.as_nanos(),
            "contextual {t_pt} vs regular {t_data}"
        );
    }

    #[test]
    fn first_touch_follows_numa_policy() {
        // NUMA-aware guest: node 2's first touch lands locally.
        let (mut mem, mut fab) = setup(HypervisorProfile::fragvisor());
        let p = PageId::new(900_000);
        let t = mem.access(SimTime::ZERO, n(2), p, Access::Write, &mut fab);
        assert_eq!(t, SimTime::ZERO);
        assert_eq!(mem.dsm.owner(p), Some(n(2)));

        // Vanilla guest: pages come from the bootstrap node's zones, so a
        // remote vCPU pays a fault immediately.
        let (mut mem, mut fab) = setup(HypervisorProfile::giantvm());
        let p = PageId::new(900_000);
        let t = mem.access(SimTime::ZERO, n(2), p, Access::Write, &mut fab);
        assert!(t > SimTime::ZERO);
        assert_eq!(mem.dsm.owner(p), Some(n(2)));
    }

    #[test]
    fn page_transactions_serialize() {
        let (mut mem, mut fab) = setup(HypervisorProfile::fragvisor());
        let r = mem.alloc_app_region("a", 1, n(0), PageClass::AppShared);
        let p = r.page(0);
        // Two nodes write the same page at the same instant: the second
        // fault queues behind the first.
        let t1 = mem.access(SimTime::ZERO, n(1), p, Access::Write, &mut fab);
        let t2 = mem.access(SimTime::ZERO, n(2), p, Access::Write, &mut fab);
        assert!(t2 > t1, "t1={t1} t2={t2}");
        assert!(t2.as_nanos() >= 2 * t1.as_nanos() / 2);
    }

    #[test]
    fn batch_accumulates_latency() {
        let (mut mem, mut fab) = setup(HypervisorProfile::fragvisor());
        let r = mem.alloc_app_region("a", 8, n(0), PageClass::Private);
        let touches: Vec<(PageId, Access)> = r.iter().map(|p| (p, Access::Read)).collect();
        let t = mem.access_batch(SimTime::ZERO, n(1), &touches, &mut fab);
        let single = {
            let (mut mem2, mut fab2) = setup(HypervisorProfile::fragvisor());
            let r2 = mem2.alloc_app_region("a", 8, n(0), PageClass::Private);
            mem2.access(SimTime::ZERO, n(1), r2.page(0), Access::Read, &mut fab2)
        };
        assert!(
            t.as_nanos() > 6 * single.as_nanos(),
            "t={t} single={single}"
        );
    }

    #[test]
    fn batched_scan_matches_per_touch_path_exactly() {
        // The batched fast path must be timing- and stats-identical to
        // the per-touch loop: same completion time, same fault counters,
        // same fabric traffic. Mix hits, remote faults, first touches,
        // a direction change (write-back over the same pages) and a
        // non-consecutive stride so segmentation sees every shape.
        let build = || {
            let (mut mem, fab) = setup(HypervisorProfile::fragvisor());
            let r = mem.alloc_app_region("a", 32, n(0), PageClass::Private);
            (mem, fab, r)
        };
        let (mut seq_mem, mut seq_fab, r1) = build();
        let (mut bat_mem, mut bat_fab, r2) = build();
        assert_eq!(r1.page(0), r2.page(0));
        let mut touches: Vec<(PageId, Access)> = r1.iter().map(|p| (p, Access::Read)).collect();
        touches.extend(r1.iter().map(|p| (p, Access::Write)));
        touches.extend((0..8).map(|i| (PageId::new(700_000 + i * 3), Access::Write)));
        let mut t_seq = SimTime::from_micros(1);
        for &(page, access) in &touches {
            t_seq = seq_mem.access(t_seq, n(1), page, access, &mut seq_fab);
        }
        let t_bat = bat_mem.access_batch(SimTime::from_micros(1), n(1), &touches, &mut bat_fab);
        assert_eq!(t_bat, t_seq);
        assert_eq!(bat_mem.dsm.stats(), seq_mem.dsm.stats());
        assert_eq!(bat_fab.messages_sent(), seq_fab.messages_sent());
        bat_mem.dsm.check_invariants().unwrap();
    }

    #[test]
    fn ethernet_fabric_makes_faults_slower() {
        let mut profile = HypervisorProfile::fragvisor();
        profile.link = LinkProfile::ethernet_1g();
        let (mut mem, mut fab) = setup(profile);
        let r = mem.alloc_app_region("a", 1, n(0), PageClass::Private);
        let t = mem.access(SimTime::ZERO, n(1), r.page(0), Access::Read, &mut fab);
        assert!(t.as_micros_f64() > 60.0, "{t}");
    }
}
