//! VM-level measurement state.

use sim_core::stats::{Histogram, Meter, TimeSeries};
use sim_core::time::SimTime;

use crate::vm::VmError;

/// Statistics collected while a [`crate::vm::VmWorld`] runs.
#[derive(Debug)]
pub struct VmStats {
    /// Completion time of each vCPU's program.
    pub vcpu_finish: Vec<Option<SimTime>>,
    /// Workload-defined samples recorded per vCPU via [`Op::Observe`]
    /// (e.g. request latencies in ns); fleet experiments map vCPUs back
    /// to tenants and fold these into per-tenant percentiles.
    ///
    /// [`Op::Observe`]: crate::program::Op::Observe
    pub samples: Vec<Vec<u64>>,
    /// End-to-end latency of client requests.
    pub request_latency: Histogram,
    /// Request latencies over time: `(completion time, latency in ms)`.
    pub latency_series: TimeSeries,
    /// Number of client requests completed.
    pub completed_requests: u64,
    /// IPIs sent (program-level and TLB shootdowns).
    pub ipis: Meter,
    /// vCPU migrations performed.
    pub migrations: u64,
    /// Total time spent in migrations.
    pub migration_time: SimTime,
    /// Transmissions dropped on a full ring.
    pub tx_drops: u64,
    /// Receives dropped on a full ring.
    pub rx_drops: u64,
    /// FIFO watermark of the (single) physical disk.
    pub disk_free_at: SimTime,
    /// Non-fatal execution errors (lost IPIs, unreachable devices).
    pub errors: Vec<VmError>,
    /// Scripted node crashes that fired.
    pub node_crashes: u64,
    /// Heartbeat probes the monitor recorded as missed.
    pub heartbeat_misses: u64,
    /// Nodes the detector declared dead.
    pub detections: u64,
    /// Total crash-to-declaration latency across detections.
    pub detection_latency: SimTime,
    /// Total crash-to-resume downtime across recoveries.
    pub recovery_downtime: SimTime,
    /// Guest work lost to checkpoint rollback across recoveries.
    pub lost_work: SimTime,
    /// DSM pages quarantined (lost with a dead slice and restored).
    pub pages_quarantined: u64,
    /// DSM master copies moved by proactive drains.
    pub pages_drained: u64,
    /// Scripted partition windows that opened.
    pub partitions: u64,
    /// Cluster-epoch bumps (one per declared-dead node).
    pub epoch_bumps: u64,
    /// Fenced nodes readmitted after a partition healed.
    pub rejoins: u64,
    /// Recoveries that fell back from the configured restore target to
    /// another live node.
    pub restore_fallbacks: u64,
    /// vCPU migrations refused during drains.
    pub migrations_refused: u64,
    /// Faults that triggered a synchronous memory-reclaim round.
    pub pressure_stalls: u64,
    /// DSM master copies evicted to a remote node by the borrow policy.
    pub pages_evicted: u64,
    /// Pages handed back by the balloon driver.
    pub pages_ballooned: u64,
    /// Pages discarded by slice deflation.
    pub pages_deflated: u64,
    /// Pages demoted to the swap tier.
    pub pages_swapped: u64,
    /// Total synchronous reclaim stall time.
    pub reclaim_latency: SimTime,
}

impl VmStats {
    /// Creates zeroed stats for `vcpus` vCPUs.
    pub fn new(vcpus: usize) -> Self {
        VmStats {
            vcpu_finish: vec![None; vcpus],
            samples: vec![Vec::new(); vcpus],
            request_latency: Histogram::new(),
            latency_series: TimeSeries::new(),
            completed_requests: 0,
            ipis: Meter::new(),
            migrations: 0,
            migration_time: SimTime::ZERO,
            tx_drops: 0,
            rx_drops: 0,
            disk_free_at: SimTime::ZERO,
            errors: Vec::new(),
            node_crashes: 0,
            heartbeat_misses: 0,
            detections: 0,
            detection_latency: SimTime::ZERO,
            recovery_downtime: SimTime::ZERO,
            lost_work: SimTime::ZERO,
            pages_quarantined: 0,
            pages_drained: 0,
            partitions: 0,
            epoch_bumps: 0,
            rejoins: 0,
            restore_fallbacks: 0,
            migrations_refused: 0,
            pressure_stalls: 0,
            pages_evicted: 0,
            pages_ballooned: 0,
            pages_deflated: 0,
            pages_swapped: 0,
            reclaim_latency: SimTime::ZERO,
        }
    }

    /// Completion time of the last vCPU to finish (zero if none finished).
    pub fn makespan(&self) -> SimTime {
        self.vcpu_finish
            .iter()
            .flatten()
            .copied()
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Client throughput in requests/second over `span`.
    pub fn requests_per_sec(&self, span: SimTime) -> f64 {
        let s = span.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.completed_requests as f64 / s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_is_max_finish() {
        let mut s = VmStats::new(3);
        s.vcpu_finish[0] = Some(SimTime::from_millis(5));
        s.vcpu_finish[2] = Some(SimTime::from_millis(9));
        assert_eq!(s.makespan(), SimTime::from_millis(9));
    }

    #[test]
    fn empty_makespan_is_zero() {
        let s = VmStats::new(2);
        assert_eq!(s.makespan(), SimTime::ZERO);
    }

    #[test]
    fn throughput() {
        let mut s = VmStats::new(1);
        s.completed_requests = 100;
        assert_eq!(s.requests_per_sec(SimTime::from_secs(4)), 25.0);
    }
}
