//! Fault resilience: predicted-failure drains and crash recovery (§4).
//!
//! Running one VM across several machines multiplies its exposure to
//! hardware failures. The paper's §4 sketches two complementary answers,
//! both of which FragVisor's mobility machinery enables and this module
//! implements:
//!
//! * **Proactive slice drain** — hardware monitoring (Intel MCA/AER-style
//!   correctable-error trends) predicts a failure; the hypervisor
//!   force-migrates every vCPU off the suspect node and moves the master
//!   copies of the pages it owns elsewhere. The VM keeps running; the
//!   cost is a handful of 86 µs vCPU migrations plus a bulk page
//!   transfer.
//! * **Reactive checkpoint/restart** — if the failure was not predicted,
//!   the VM is restored from its last distributed checkpoint
//!   ([`crate::checkpoint`]), losing the work since that checkpoint.
//!
//! The `exp_reliability` binary in the bench harness quantifies the trade
//! between the two as a function of checkpoint interval and prediction
//! lead time.

use comm::{Fabric, LinkProfile, Message, MsgClass, NodeId};
use sim_core::time::SimTime;
use sim_core::units::{Bandwidth, ByteSize};

use crate::checkpoint;
use crate::vm::{Placement, VmSim};
use crate::VcpuId;

/// Outcome of proactively draining a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrainReport {
    /// vCPUs migrated off the failing node.
    pub vcpus_moved: u32,
    /// vCPUs that refused to migrate (mid-migration or already done);
    /// each refusal is also traced as `VcpuMigrateRefused`.
    pub vcpus_refused: u32,
    /// Master-copy pages whose home moved.
    pub pages_moved: u64,
    /// Time to move the page data over the fabric.
    pub page_transfer: SimTime,
    /// Total wall time of the drain (migrations + page transfer overlap).
    pub duration: SimTime,
}

/// Proactively evacuates `failing`: migrates its vCPUs to `target`
/// (pCPU k for vCPU k) and re-homes the master copies it owns.
///
/// vCPUs that cannot migrate (already migrating, or done) are skipped and
/// counted in [`DrainReport::vcpus_refused`], each emitting a
/// `VcpuMigrateRefused` trace event — a partial drain reports itself
/// instead of silently claiming success.
///
/// Returns `None` if the profile lacks mobility (a GiantVM-style static
/// VM cannot be drained — it must crash and restart).
pub fn force_drain(sim: &mut VmSim, failing: NodeId, target: NodeId) -> Option<DrainReport> {
    if !sim.world.profile().mobility {
        return None;
    }
    let mut vcpus_moved = 0;
    let mut vcpus_refused = 0;
    for i in 0..sim.world.vcpu_count() {
        let v = VcpuId::from_usize(i);
        if sim.world.placement_of(v).node == failing {
            let ok = sim.migrate_vcpu(
                v,
                Placement {
                    node: target,
                    pcpu: i as u32,
                },
            );
            if ok {
                vcpus_moved += 1;
            } else {
                vcpus_refused += 1;
                let now = sim.now();
                sim.world.note_migration_refused(now, v, failing, target);
            }
        }
    }
    // Re-home the pages the failing node owns: a bulk, pipelined transfer.
    // Both the count (O(1) counter) and the drain itself (O(pages the
    // failing node holds)) are independent of directory size, which is
    // what keeps the predicted-failure path sub-millisecond next to a
    // large healthy slice's working set.
    let pages_moved = sim.world.mem.dsm.pages_owned_by(failing);
    let bytes = ByteSize::bytes(pages_moved * (4096 + 64));
    let link = sim.world.profile().link;
    let page_transfer = link.bandwidth.transfer_time(bytes)
        + if pages_moved > 0 {
            link.one_way(ByteSize::bytes(64))
        } else {
            SimTime::ZERO
        };
    let moved = sim.world.mem.dsm.drain_node(failing, target);
    debug_assert_eq!(moved, pages_moved);
    let migration_cost = sim.world.profile().vcpu_migration_cost * u64::from(vcpus_moved.max(1));
    Some(DrainReport {
        vcpus_moved,
        vcpus_refused,
        pages_moved,
        page_transfer,
        // vCPU migrations and the page stream overlap; the drain is done
        // when the slower finishes.
        duration: page_transfer.max(migration_cost),
    })
}

/// Parameters of a reactive crash-recovery episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashScenario {
    /// Wall time between checkpoints.
    pub checkpoint_interval: SimTime,
    /// Time from crash to failure detection (heartbeat timeout).
    pub detection: SimTime,
    /// Checkpoint image size.
    pub image: ByteSize,
    /// Slices the restored VM spans.
    pub slices: usize,
    /// Disk holding the checkpoint image.
    pub disk: Bandwidth,
    /// Fabric for redistribution.
    pub link: LinkProfile,
}

/// Outcome of a crash-recovery episode, averaged over a uniformly random
/// crash point within the checkpoint interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// Expected guest work lost (half the checkpoint interval).
    pub expected_lost_work: SimTime,
    /// Restore time from the image.
    pub restore_time: SimTime,
    /// Expected total downtime (detection + restore + lost-work replay).
    pub expected_downtime: SimTime,
    /// Steady-state overhead: fraction of time spent checkpointing.
    pub checkpoint_overhead: f64,
}

/// Computes the cost profile of reactive checkpoint/restart recovery.
pub fn crash_recovery(s: CrashScenario) -> RecoveryReport {
    let restore_time = checkpoint::restore(s.image, s.slices, s.disk, s.link);
    let expected_lost_work = s.checkpoint_interval / 2;
    // A checkpoint of the same image is taken every interval.
    let ckpt_time = s.disk.transfer_time(s.image);
    let checkpoint_overhead =
        ckpt_time.as_secs_f64() / s.checkpoint_interval.as_secs_f64().max(1e-9);
    RecoveryReport {
        expected_lost_work,
        restore_time,
        expected_downtime: s.detection + restore_time + expected_lost_work,
        checkpoint_overhead,
    }
}

/// Charges a drain's page stream onto a fabric (so concurrent experiments
/// observe the bandwidth consumption).
pub fn charge_drain_traffic(
    fabric: &mut Fabric,
    now: SimTime,
    from: NodeId,
    to: NodeId,
    pages: u64,
) {
    // One page-sized message per 32 pages models the pipelined bulk
    // stream without flooding the meter with millions of sends.
    let batches = pages.div_ceil(32).max(1);
    let batch_bytes = ByteSize::bytes(32 * (4096 + 64));
    for _ in 0..batches.min(4096) {
        let m = Message::new(from, to, batch_bytes, MsgClass::Migration);
        let _ = fabric.send(now, m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::HypervisorProfile;
    use crate::program::FixedCompute;
    use crate::vm::VmBuilder;
    use dsm::PageClass;

    fn build_vm(profile: HypervisorProfile) -> VmSim {
        let mut b = VmBuilder::new(profile, 3);
        for i in 0..3 {
            b = b.vcpu(
                Placement::new(i, 0),
                Box::new(FixedCompute::new(SimTime::from_millis(100))),
            );
        }
        let mut sim = b.build();
        // Give node 2 some owned pages.
        let _ = sim
            .world
            .mem
            .alloc_app_region("data", 256, NodeId::new(2), PageClass::Private);
        sim
    }

    #[test]
    fn drain_evacuates_vcpus_and_pages() {
        let mut sim = build_vm(HypervisorProfile::fragvisor());
        sim.run_until(SimTime::from_millis(10));
        let before = sim.world.mem.dsm.pages_owned_by(NodeId::new(2));
        assert!(before >= 256);
        let r = force_drain(&mut sim, NodeId::new(2), NodeId::new(0)).expect("mobile");
        assert_eq!(r.vcpus_moved, 1);
        assert_eq!(r.pages_moved, before);
        assert_eq!(sim.world.mem.dsm.pages_owned_by(NodeId::new(2)), 0);
        // The VM finishes normally afterwards.
        let done = sim.run();
        assert!(done >= SimTime::from_millis(100));
        assert_eq!(sim.world.placement_of(VcpuId::new(2)).node, NodeId::new(0));
    }

    #[test]
    fn drain_is_fast_relative_to_restart() {
        let mut sim = build_vm(HypervisorProfile::fragvisor());
        sim.run_until(SimTime::from_millis(10));
        let r = force_drain(&mut sim, NodeId::new(2), NodeId::new(0)).unwrap();
        // A 1 MiB-scale drain takes well under a millisecond on 56 Gbps.
        assert!(r.duration < SimTime::from_millis(2), "{:?}", r);
    }

    #[test]
    fn giantvm_cannot_drain() {
        let mut sim = build_vm(HypervisorProfile::giantvm());
        sim.run_until(SimTime::from_millis(10));
        assert!(force_drain(&mut sim, NodeId::new(2), NodeId::new(0)).is_none());
    }

    #[test]
    fn recovery_cost_scales_with_interval() {
        let base = CrashScenario {
            checkpoint_interval: SimTime::from_secs(60),
            detection: SimTime::from_millis(500),
            image: ByteSize::gib(10),
            slices: 4,
            disk: Bandwidth::mb_per_sec(500.0),
            link: LinkProfile::infiniband_56g(),
        };
        let short = crash_recovery(CrashScenario {
            checkpoint_interval: SimTime::from_secs(60),
            ..base
        });
        let long = crash_recovery(CrashScenario {
            checkpoint_interval: SimTime::from_secs(600),
            ..base
        });
        assert!(long.expected_lost_work > short.expected_lost_work);
        assert!(long.checkpoint_overhead < short.checkpoint_overhead);
        assert_eq!(short.restore_time, long.restore_time);
        // 10 GiB at 500 MB/s ≈ 21.5s restore dominates short intervals.
        assert!(short.expected_downtime > SimTime::from_secs(21));
    }

    #[test]
    fn drain_traffic_metered() {
        let mut f = Fabric::homogeneous(2, LinkProfile::infiniband_56g());
        charge_drain_traffic(&mut f, SimTime::ZERO, NodeId::new(1), NodeId::new(0), 1024);
        let m = f.stats().get(&MsgClass::Migration);
        assert_eq!(m.events, 32);
        assert!(m.bytes >= 1024 * 4096);
    }
}
