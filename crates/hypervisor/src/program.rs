//! The guest-program interface: what workloads look like to a vCPU.
//!
//! A [`Program`] is a state machine producing [`Op`]s. The VM world executes
//! one op at a time per vCPU: compute bursts share the pCPU under processor
//! sharing, page touches run through the DSM, kernel ops expand into traces
//! from the guest model, and I/O ops run through the delegated VirtIO
//! devices. Blocking ops ([`Op::NetRecv`], [`Op::LocalRecv`],
//! [`Op::WaitIpi`], [`Op::Barrier`]) park the vCPU until the corresponding
//! wakeup.

use std::collections::VecDeque;

use dsm::{Access, PageId};
use guest::memory::{Region, RegionAllocator};
use guest::KernelOp;
use sim_core::rng::DetRng;
use sim_core::time::SimTime;
use sim_core::units::ByteSize;

use crate::VcpuId;

/// A message visible to guest software on some vCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestMsg {
    /// A network request/response delivered through virtio-net.
    Net {
        /// Connection identifier chosen by the client.
        conn: u64,
        /// Payload size.
        bytes: u64,
    },
    /// A guest-local message (UNIX socket / pipe) from another vCPU.
    Local {
        /// Sending vCPU.
        from: VcpuId,
        /// Application-defined tag.
        tag: u64,
        /// Payload size.
        bytes: u64,
    },
}

/// One operation issued by a guest program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Burn user-mode CPU for the given reference-core duration.
    Compute(SimTime),
    /// Access a single guest page.
    Touch {
        /// Page accessed.
        page: PageId,
        /// Load or store.
        access: Access,
    },
    /// Access a batch of pages back-to-back (one engine event for all).
    TouchBatch(Vec<(PageId, Access)>),
    /// Perform a guest-kernel operation (expands via the guest model).
    Kernel(KernelOp),
    /// Send `bytes` to the external network on connection `conn`,
    /// reading the payload from `payload` pages.
    NetSend {
        /// Connection the data belongs to.
        conn: u64,
        /// Bytes to send.
        bytes: ByteSize,
        /// Guest pages holding the payload.
        payload: Vec<PageId>,
    },
    /// Block until a network message arrives for this vCPU.
    NetRecv,
    /// Read or write the block device.
    BlkIo {
        /// Transfer size.
        bytes: ByteSize,
        /// True for writes.
        write: bool,
        /// Use the tmpfs (ramdisk) backend instead of the SSD.
        tmpfs: bool,
        /// Guest buffer pages.
        buffer: Vec<PageId>,
    },
    /// Send a guest-local message to another vCPU (UNIX-socket model):
    /// charges the kernel socket path and wakes the target.
    LocalSend {
        /// Destination vCPU.
        to: VcpuId,
        /// Application tag.
        tag: u64,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Block until a guest-local message arrives.
    LocalRecv,
    /// Block until *any* message (network or guest-local) arrives;
    /// dispatcher loops (e.g. an NGINX worker juggling client connections
    /// and PHP backends) use this as their epoll.
    RecvAny,
    /// Write to the serial console (handled by the single PTY worker on
    /// the bootstrap slice; asynchronous for the guest).
    ConsoleWrite {
        /// Bytes written (log line length).
        bytes: u64,
    },
    /// Send an IPI to another vCPU.
    SendIpi(VcpuId),
    /// Block until an IPI arrives.
    WaitIpi,
    /// Synchronize `parties` vCPUs on barrier `id`.
    Barrier {
        /// Barrier identifier (application-chosen).
        id: u32,
        /// Number of vCPUs that must arrive.
        parties: u32,
    },
    /// Sleep for a duration (guest timer).
    Sleep(SimTime),
    /// Send `bytes` to another Aggregate VM in the fleet (cross-tenant
    /// RPC over the datacenter network). The message is staged on the
    /// shard's fleet outbox and crosses shards at the next window barrier
    /// (see `crate::fleet`); the receiver observes it as a
    /// [`GuestMsg::Net`] whose `conn` is the sender's global tenant id.
    /// Asynchronous for the sender (fire-and-forget, like
    /// [`Op::NetSend`]). Outside a fleet the message vanishes (EIO).
    FleetSend {
        /// Global destination tenant id.
        dst: u32,
        /// Payload size in bytes.
        bytes: u64,
        /// Opaque application tag carried to the receiver.
        tag: u64,
    },
    /// Record a workload-defined sample (e.g. a request latency the
    /// program measured with `cx.now`) into this vCPU's sample series in
    /// [`crate::VmStats`]. Free for the guest; fleet experiments
    /// aggregate the series into per-tenant p50/p99/p999.
    Observe {
        /// Sampled value in nanoseconds.
        value_ns: u64,
    },
    /// The program is finished; the vCPU halts.
    Done,
}

/// Context handed to [`Program::next`].
pub struct ProgCtx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The vCPU this program runs on.
    pub vcpu: VcpuId,
    /// Deterministic randomness (derived per vCPU).
    pub rng: &'a mut DetRng,
    /// Message that completed the previous blocking receive, if any.
    pub delivered: Option<GuestMsg>,
    /// Pending messages not yet consumed by a receive.
    pub inbox: &'a VecDeque<GuestMsg>,
    /// The guest memory allocator, for carving new regions at runtime.
    pub alloc: &'a mut RegionAllocator,
}

impl ProgCtx<'_> {
    /// Allocates a fresh guest region (bookkeeping only — issue
    /// [`Op::Kernel`] with [`KernelOp::AllocPages`] to charge its cost).
    pub fn alloc_region(&mut self, name: &str, pages: u64) -> Region {
        self.alloc.alloc(name, pages)
    }
}

/// A guest workload bound to one vCPU.
pub trait Program {
    /// Produces the next operation. Called once at start and then each
    /// time the previous operation completes; for blocking receives,
    /// `cx.delivered` carries the message that satisfied the wait.
    fn next(&mut self, cx: &mut ProgCtx<'_>) -> Op;

    /// Short label for reports.
    fn label(&self) -> &str {
        "program"
    }
}

/// A trivial program that computes for a fixed time and exits. Useful as a
/// placeholder and in tests.
#[derive(Debug)]
pub struct FixedCompute {
    remaining: Option<SimTime>,
}

impl FixedCompute {
    /// A program that computes for `d` and halts.
    pub fn new(d: SimTime) -> Self {
        FixedCompute { remaining: Some(d) }
    }
}

impl Program for FixedCompute {
    fn next(&mut self, _cx: &mut ProgCtx<'_>) -> Op {
        match self.remaining.take() {
            Some(d) => Op::Compute(d),
            None => Op::Done,
        }
    }

    fn label(&self) -> &str {
        "fixed-compute"
    }
}

/// A program built from a fixed list of ops; convenient in tests.
#[derive(Debug)]
pub struct Scripted {
    ops: VecDeque<Op>,
}

impl Scripted {
    /// Creates a program that issues `ops` in order, then [`Op::Done`].
    pub fn new(ops: impl IntoIterator<Item = Op>) -> Self {
        Scripted {
            ops: ops.into_iter().collect(),
        }
    }
}

impl Program for Scripted {
    fn next(&mut self, _cx: &mut ProgCtx<'_>) -> Op {
        self.ops.pop_front().unwrap_or(Op::Done)
    }

    fn label(&self) -> &str {
        "scripted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_compute_runs_once() {
        let mut p = FixedCompute::new(SimTime::from_millis(5));
        let mut rng = DetRng::new(1);
        let mut alloc = RegionAllocator::new(ByteSize::mib(1));
        let inbox = VecDeque::new();
        let mut cx = ProgCtx {
            now: SimTime::ZERO,
            vcpu: VcpuId::new(0),
            rng: &mut rng,
            delivered: None,
            inbox: &inbox,
            alloc: &mut alloc,
        };
        assert_eq!(p.next(&mut cx), Op::Compute(SimTime::from_millis(5)));
        assert_eq!(p.next(&mut cx), Op::Done);
        assert_eq!(p.next(&mut cx), Op::Done);
    }

    #[test]
    fn scripted_replays_ops() {
        let mut p = Scripted::new([
            Op::Compute(SimTime::from_micros(1)),
            Op::Sleep(SimTime::from_micros(2)),
        ]);
        let mut rng = DetRng::new(1);
        let mut alloc = RegionAllocator::new(ByteSize::mib(1));
        let inbox = VecDeque::new();
        let mut cx = ProgCtx {
            now: SimTime::ZERO,
            vcpu: VcpuId::new(0),
            rng: &mut rng,
            delivered: None,
            inbox: &inbox,
            alloc: &mut alloc,
        };
        assert!(matches!(p.next(&mut cx), Op::Compute(_)));
        assert!(matches!(p.next(&mut cx), Op::Sleep(_)));
        assert_eq!(p.next(&mut cx), Op::Done);
    }

    #[test]
    fn ctx_alloc_region() {
        let mut rng = DetRng::new(1);
        let mut alloc = RegionAllocator::new(ByteSize::mib(1));
        let inbox = VecDeque::new();
        let mut cx = ProgCtx {
            now: SimTime::ZERO,
            vcpu: VcpuId::new(0),
            rng: &mut rng,
            delivered: None,
            inbox: &inbox,
            alloc: &mut alloc,
        };
        let r = cx.alloc_region("buf", 4);
        assert_eq!(r.pages, 4);
    }
}
