//! Memory elasticity: per-node pressure tracking and reclaim policies.
//!
//! The paper's thesis is that when a node runs short of memory it should
//! *borrow* from other nodes instead of shrinking the VM. This module
//! makes that an experiment rather than an assertion: a [`MemoryPressure`]
//! model (per-node resident pages vs a configurable budget, sampled on the
//! DSM fault path) drives a [`MemoryReclaimer`], and four implementations
//! play out the design space:
//!
//! * **Borrow** — evict DSM master copies toward the remote node with the
//!   most headroom (the Aggregate-VM answer); pages stay resident in the
//!   VM, later touches pay a normal remote fault.
//! * **Balloon** — a guest balloon driver hands private pages back to the
//!   host; reuse pays a fresh first-touch fault.
//! * **Deflate** — the slice's share shrinks: pages are discarded *and*
//!   the pseudo-physical limit drops, refusing allocations above it.
//! * **Swap** — demote to a slower swap tier with asymmetric latencies;
//!   the next touch stalls for the swap-in before the DSM even looks.
//!
//! Reclaim is synchronous with the faulting access (direct reclaim): the
//! triggering vCPU pays the reclaim latency as a pressure stall, which is
//! exactly the cost the head-to-head study measures.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use comm::{Fabric, Message, MsgClass, NodeId};
use dsm::{Dsm, PageClass, PageId};
use guest::memory::RegionAllocator;
use sim_core::time::SimTime;
use sim_core::trace::TraceEvent;
use sim_core::units::ByteSize;

use crate::memory::{VmMemory, DSM_PAGE};
use crate::profile::HypervisorProfile;

/// Guest balloon driver cost per page handed back (list manipulation and
/// a madvise-style host notification, amortized over a batch).
const BALLOON_PAGE_COST: SimTime = SimTime::from_nanos(200);

/// Host-side cost per page unmapped by deflation (EPT teardown).
const DEFLATE_PAGE_COST: SimTime = SimTime::from_nanos(300);

/// Per-node memory pressure, derived from resident pages vs the budget.
///
/// Levels are ordered: reclaim triggers at [`MemoryPressure::High`] and
/// above, while [`MemoryPressure::Moderate`] only changes the trace
/// signal (the level every reclaim round drives back down to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemoryPressure {
    /// Below the moderate watermark: no action.
    Normal,
    /// Above the moderate watermark: watched, not reclaimed.
    Moderate,
    /// Above the high watermark: direct reclaim on the fault path.
    High,
    /// Above the critical watermark: reclaim with a larger target.
    Critical,
}

impl MemoryPressure {
    /// Stable lower-case label used in trace events and reports.
    pub fn label(self) -> &'static str {
        match self {
            MemoryPressure::Normal => "normal",
            MemoryPressure::Moderate => "moderate",
            MemoryPressure::High => "high",
            MemoryPressure::Critical => "critical",
        }
    }
}

/// Watermarks as fractions of the node budget.
#[derive(Debug, Clone, Copy)]
pub struct PressureThresholds {
    /// Resident/budget ratio above which pressure is moderate.
    pub moderate: f64,
    /// Ratio above which pressure is high (reclaim triggers).
    pub high: f64,
    /// Ratio above which pressure is critical.
    pub critical: f64,
}

impl Default for PressureThresholds {
    fn default() -> Self {
        PressureThresholds {
            moderate: 0.70,
            high: 0.85,
            critical: 0.95,
        }
    }
}

impl PressureThresholds {
    /// Classifies `resident` pages against a `budget` in pages.
    pub fn level(&self, resident: u64, budget: u64) -> MemoryPressure {
        if budget == 0 {
            return MemoryPressure::Normal;
        }
        let r = resident as f64 / budget as f64;
        if r >= self.critical {
            MemoryPressure::Critical
        } else if r >= self.high {
            MemoryPressure::High
        } else if r >= self.moderate {
            MemoryPressure::Moderate
        } else {
            MemoryPressure::Normal
        }
    }
}

/// The reclaim policy a VM runs under pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclaimPolicy {
    /// Evict master copies to the remote node with the most headroom.
    Borrow,
    /// Guest balloon: discard private pages, fault-on-reuse.
    Balloon,
    /// Shrink the slice: discard pages and lower the allocation limit.
    Deflate,
    /// Demote to a slower swap tier (asymmetric in/out latencies).
    Swap,
}

impl ReclaimPolicy {
    /// All policies, in report order.
    pub const ALL: [ReclaimPolicy; 4] = [
        ReclaimPolicy::Borrow,
        ReclaimPolicy::Balloon,
        ReclaimPolicy::Deflate,
        ReclaimPolicy::Swap,
    ];

    /// Stable lower-case label used in trace events and reports.
    pub fn label(self) -> &'static str {
        match self {
            ReclaimPolicy::Borrow => "borrow",
            ReclaimPolicy::Balloon => "balloon",
            ReclaimPolicy::Deflate => "deflate",
            ReclaimPolicy::Swap => "swap",
        }
    }
}

/// One reclaim round's input: how bad things are and how much to free.
#[derive(Debug, Clone, Copy)]
pub struct ReclaimRequest {
    /// The pressure level that triggered the round.
    pub pressure: MemoryPressure,
    /// Best-effort target: pages to free to get back below moderate.
    pub target_pages: u64,
}

/// What one reclaim round achieved.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReclaimOutcome {
    /// Pages actually freed (may be less than the target).
    pub reclaimed_pages: u64,
    /// Synchronous stall charged to the faulting vCPU.
    pub latency: SimTime,
}

/// Running totals a reclaimer maintains, synced into
/// [`crate::stats::VmStats`] when a simulation finishes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReclaimCounters {
    /// Faults that triggered a synchronous reclaim round.
    pub pressure_stalls: u64,
    /// Pages evicted to a remote node (borrow).
    pub pages_evicted: u64,
    /// Pages handed back by the balloon driver.
    pub pages_ballooned: u64,
    /// Pages discarded by deflation.
    pub pages_deflated: u64,
    /// Pages demoted to the swap tier.
    pub pages_swapped: u64,
    /// Pages brought back from the swap tier.
    pub pages_swapped_in: u64,
    /// First-touch refaults on ballooned/deflated pages.
    pub refaults: u64,
    /// Total synchronous reclaim stall time.
    pub reclaim_latency: SimTime,
}

/// Shared reclaim bookkeeping: which pages are out, and the counters.
///
/// Lives outside the reclaimer because the access path needs it too
/// (swap-ins and refaults happen on touch, not during reclaim).
#[derive(Debug, Default)]
pub struct ReclaimBook {
    /// Swapped-out pages and the node whose residency they left.
    pub swapped: BTreeMap<PageId, NodeId>,
    /// Swapped-out page count per node (indexed by node id).
    pub swapped_count: Vec<u64>,
    /// Pages discarded by balloon/deflate awaiting a refault.
    pub released: BTreeSet<PageId>,
    /// Pages the balloon currently holds (refault decrements).
    pub balloon_outstanding: u64,
    /// Running totals.
    pub counters: ReclaimCounters,
}

impl ReclaimBook {
    pub(crate) fn swapped_on(&self, node: NodeId) -> u64 {
        self.swapped_count.get(node.index()).copied().unwrap_or(0)
    }

    pub(crate) fn bump_swapped(&mut self, node: NodeId, delta: i64) {
        if self.swapped_count.len() <= node.index() {
            self.swapped_count.resize(node.index() + 1, 0);
        }
        let c = &mut self.swapped_count[node.index()];
        *c = c.saturating_add_signed(delta);
    }
}

/// Elasticity parameters resolved from a [`MemoryConfig`].
#[derive(Debug, Clone, Copy)]
pub struct ElasticParams {
    /// Per-node resident-page budget.
    pub budget_pages: u64,
    /// Pressure watermarks.
    pub thresholds: PressureThresholds,
    /// Nodes the VM spans (the borrow policy's destination universe).
    pub nodes: u32,
    /// Latency to demote one page to the swap tier.
    pub swap_out: SimTime,
    /// Latency to bring one page back from the swap tier.
    pub swap_in: SimTime,
    /// Fraction of the budget the balloon may hold at once.
    pub balloon_share: f64,
}

/// Everything a reclaim round may touch, borrowed disjointly from the
/// memory subsystem so the boxed reclaimer can run against it.
pub struct ReclaimCtx<'a> {
    /// Simulated time the round starts at.
    pub now: SimTime,
    /// The pressured node.
    pub node: NodeId,
    /// The coherence directory (victim selection, eviction, release).
    pub dsm: &'a mut Dsm,
    /// The guest allocator (deflation shrinks its limit).
    pub alloc: &'a mut RegionAllocator,
    /// The fabric: borrow evictions occupy real link bandwidth.
    pub fabric: &'a mut Fabric,
    /// Shared reclaim bookkeeping.
    pub book: &'a mut ReclaimBook,
    /// Elasticity parameters.
    pub params: &'a ElasticParams,
}

impl ReclaimCtx<'_> {
    /// Pages resident on `node`: owned master copies minus those parked
    /// in the swap tier.
    pub fn resident(&self, node: NodeId) -> u64 {
        self.dsm
            .pages_owned_by(node)
            .saturating_sub(self.book.swapped_on(node))
    }
}

/// A reclaim policy: pressure level and per-class priorities in,
/// best-effort pages out.
pub trait MemoryReclaimer {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// The policy tag this reclaimer implements.
    fn policy(&self) -> ReclaimPolicy;

    /// Eviction priority for a page class: lower is evicted first,
    /// `None` exempts the class. The default pins kernel text, page
    /// tables and device rings (discarding those would tear the guest
    /// down, not slim it).
    fn eviction_priority(&self, class: PageClass) -> Option<u8> {
        match class {
            PageClass::Private => Some(0),
            PageClass::AppShared => Some(1),
            PageClass::KernelData => Some(2),
            PageClass::KernelText | PageClass::PageTable | PageClass::DeviceRing => None,
        }
    }

    /// Frees up to `req.target_pages` pages, best effort.
    fn reclaim(&mut self, req: &ReclaimRequest, ctx: &mut ReclaimCtx<'_>) -> ReclaimOutcome;
}

/// Borrow: evict master copies to the remote node with the most headroom.
#[derive(Debug, Default)]
struct BorrowReclaimer;

impl MemoryReclaimer for BorrowReclaimer {
    fn name(&self) -> &'static str {
        "borrow"
    }

    fn policy(&self) -> ReclaimPolicy {
        ReclaimPolicy::Borrow
    }

    fn reclaim(&mut self, req: &ReclaimRequest, ctx: &mut ReclaimCtx<'_>) -> ReclaimOutcome {
        // Destination: most headroom below the *moderate* watermark, ties
        // to the lowest node id. Filling a donor past its own comfort zone
        // just moves the pressure next door and sets off eviction
        // ping-pong, so a donor is only good for the pages that keep it
        // under Moderate. A cluster with no such donor leaves nothing to
        // borrow — the fault stalls but nothing moves.
        let donor_fill = (ctx.params.thresholds.moderate * ctx.params.budget_pages as f64) as u64;
        let mut best: Option<(u64, u32)> = None;
        for id in 0..ctx.params.nodes {
            if id == ctx.node.0 {
                continue;
            }
            let headroom = donor_fill.saturating_sub(ctx.resident(NodeId::new(id)));
            if headroom > 0 && best.is_none_or(|(h, _)| headroom > h) {
                best = Some((headroom, id));
            }
        }
        let Some((headroom, dst)) = best else {
            return ReclaimOutcome::default();
        };
        let dst = NodeId::new(dst);
        let max = req.target_pages.min(headroom) as usize;
        let rank = |c: PageClass| self.eviction_priority(c);
        let victims = ctx.dsm.reclaim_victims(ctx.node, max, rank);
        let mut t = ctx.now;
        let mut moved = 0u64;
        for v in victims {
            if ctx.dsm.evict_page(v, dst) {
                // The page body actually crosses the fabric.
                t = crate::memory::dsm_send(
                    ctx.fabric,
                    t,
                    Message::new(ctx.node, dst, DSM_PAGE, MsgClass::Dsm),
                );
                moved += 1;
            }
        }
        ctx.book.counters.pages_evicted += moved;
        ReclaimOutcome {
            reclaimed_pages: moved,
            latency: t - ctx.now,
        }
    }
}

/// Balloon: discard guest-private pages; reuse refaults as first touch.
#[derive(Debug, Default)]
struct BalloonReclaimer;

impl MemoryReclaimer for BalloonReclaimer {
    fn name(&self) -> &'static str {
        "balloon"
    }

    fn policy(&self) -> ReclaimPolicy {
        ReclaimPolicy::Balloon
    }

    fn eviction_priority(&self, class: PageClass) -> Option<u8> {
        // The balloon driver only ever hands back guest-private pages.
        match class {
            PageClass::Private => Some(0),
            _ => None,
        }
    }

    fn reclaim(&mut self, req: &ReclaimRequest, ctx: &mut ReclaimCtx<'_>) -> ReclaimOutcome {
        let cap = (ctx.params.balloon_share * ctx.params.budget_pages as f64) as u64;
        let room = cap.saturating_sub(ctx.book.balloon_outstanding);
        let max = req.target_pages.min(room) as usize;
        if max == 0 {
            return ReclaimOutcome::default();
        }
        let rank = |c: PageClass| self.eviction_priority(c);
        let victims = ctx.dsm.reclaim_victims(ctx.node, max, rank);
        let mut freed = 0u64;
        for v in victims {
            if ctx.dsm.release_page(v, "balloon").is_some() {
                ctx.book.released.insert(v);
                freed += 1;
            }
        }
        if freed > 0 {
            let at = ctx.now.as_nanos();
            let node = ctx.node.0;
            ctx.dsm.tracer().emit_with(|| TraceEvent::BalloonInflate {
                at,
                node,
                pages: freed,
            });
        }
        ctx.book.balloon_outstanding += freed;
        ctx.book.counters.pages_ballooned += freed;
        ReclaimOutcome {
            reclaimed_pages: freed,
            latency: SimTime::from_nanos(freed * BALLOON_PAGE_COST.as_nanos()),
        }
    }
}

/// Deflate: discard pages *and* shrink the pseudo-physical limit.
#[derive(Debug, Default)]
struct DeflateReclaimer;

impl MemoryReclaimer for DeflateReclaimer {
    fn name(&self) -> &'static str {
        "deflate"
    }

    fn policy(&self) -> ReclaimPolicy {
        ReclaimPolicy::Deflate
    }

    fn reclaim(&mut self, req: &ReclaimRequest, ctx: &mut ReclaimCtx<'_>) -> ReclaimOutcome {
        let rank = |c: PageClass| self.eviction_priority(c);
        let victims = ctx
            .dsm
            .reclaim_victims(ctx.node, req.target_pages as usize, rank);
        let mut freed = 0u64;
        for v in victims {
            if ctx.dsm.release_page(v, "deflate").is_some() {
                ctx.book.released.insert(v);
                freed += 1;
            }
        }
        if freed > 0 {
            // The share is gone for good: the guest may not allocate
            // above the deflated limit (clamped to what is in use).
            let limit = ctx.alloc.limit_pages();
            ctx.alloc.set_limit_pages(limit.saturating_sub(freed));
        }
        ctx.book.counters.pages_deflated += freed;
        ReclaimOutcome {
            reclaimed_pages: freed,
            latency: SimTime::from_nanos(freed * DEFLATE_PAGE_COST.as_nanos()),
        }
    }
}

/// Swap: demote pages to a slower tier; the next touch pays the swap-in.
#[derive(Debug, Default)]
struct SwapReclaimer;

impl MemoryReclaimer for SwapReclaimer {
    fn name(&self) -> &'static str {
        "swap"
    }

    fn policy(&self) -> ReclaimPolicy {
        ReclaimPolicy::Swap
    }

    fn reclaim(&mut self, req: &ReclaimRequest, ctx: &mut ReclaimCtx<'_>) -> ReclaimOutcome {
        // Over-select: victims already in the swap tier (still owned in
        // the directory, so still candidates) are skipped below.
        let want = req.target_pages as usize;
        let rank = |c: PageClass| self.eviction_priority(c);
        let victims = ctx.dsm.reclaim_victims(
            ctx.node,
            want + ctx.book.swapped_on(ctx.node) as usize,
            rank,
        );
        let at = ctx.now.as_nanos();
        let node = ctx.node;
        let mut out = 0u64;
        for v in victims {
            if out as usize >= want {
                break;
            }
            if ctx.book.swapped.contains_key(&v) {
                continue;
            }
            ctx.book.swapped.insert(v, node);
            ctx.book.bump_swapped(node, 1);
            let pg = v.index() as u64;
            ctx.dsm.tracer().emit_with(|| TraceEvent::PageSwapOut {
                at,
                page: pg,
                node: node.0,
            });
            out += 1;
        }
        ctx.book.counters.pages_swapped += out;
        ReclaimOutcome {
            reclaimed_pages: out,
            latency: SimTime::from_nanos(out * ctx.params.swap_out.as_nanos()),
        }
    }
}

fn make_reclaimer(policy: ReclaimPolicy) -> Box<dyn MemoryReclaimer> {
    match policy {
        ReclaimPolicy::Borrow => Box::new(BorrowReclaimer),
        ReclaimPolicy::Balloon => Box::new(BalloonReclaimer),
        ReclaimPolicy::Deflate => Box::new(DeflateReclaimer),
        ReclaimPolicy::Swap => Box::new(SwapReclaimer),
    }
}

/// The elasticity machinery attached to a [`VmMemory`] when a budget and
/// policy are configured.
pub struct ElasticState {
    /// Resolved parameters.
    pub params: ElasticParams,
    /// The active policy.
    pub reclaimer: Box<dyn MemoryReclaimer>,
    /// Last sampled pressure level per node (trace-on-change).
    pub last_level: Vec<MemoryPressure>,
    /// Shared bookkeeping.
    pub book: ReclaimBook,
}

impl fmt::Debug for ElasticState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ElasticState")
            .field("params", &self.params)
            .field("reclaimer", &self.reclaimer.name())
            .field("last_level", &self.last_level)
            .field("book", &self.book)
            .finish()
    }
}

impl ElasticState {
    pub(crate) fn new(params: ElasticParams, policy: ReclaimPolicy) -> Self {
        ElasticState {
            params,
            reclaimer: make_reclaimer(policy),
            last_level: Vec::new(),
            book: ReclaimBook::default(),
        }
    }

    pub(crate) fn level_slot(&mut self, node: NodeId) -> &mut MemoryPressure {
        if self.last_level.len() <= node.index() {
            self.last_level
                .resize(node.index() + 1, MemoryPressure::Normal);
        }
        &mut self.last_level[node.index()]
    }
}

/// Builder for a VM's memory subsystem: capacity, layout inputs, and the
/// optional elasticity configuration (budget, watermarks, reclaim policy,
/// swap-tier latencies).
///
/// Replaces the positional `VmMemory::new(profile, vcpus, ram, bootstrap)`
/// — mirroring the `DeviceConfig` builder — and is accepted by
/// `VmBuilder::with_memory`. Elasticity engages only when both a
/// [`MemoryConfig::node_budget`] and a [`MemoryConfig::policy`] are set;
/// otherwise the subsystem behaves exactly as before.
///
/// # Examples
///
/// ```
/// use hypervisor::{HypervisorProfile, MemoryConfig, ReclaimPolicy};
/// use sim_core::units::ByteSize;
///
/// let mem = MemoryConfig::new(ByteSize::gib(4))
///     .vcpus(4)
///     .nodes(4)
///     .node_budget(ByteSize::mib(64))
///     .policy(ReclaimPolicy::Borrow)
///     .build(&HypervisorProfile::fragvisor());
/// assert!(mem.reclaim_counters().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct MemoryConfig {
    pub(crate) ram: ByteSize,
    pub(crate) vcpus: usize,
    pub(crate) bootstrap: NodeId,
    pub(crate) nodes: u32,
    pub(crate) budget: Option<ByteSize>,
    pub(crate) thresholds: PressureThresholds,
    pub(crate) policy: Option<ReclaimPolicy>,
    pub(crate) swap_out: SimTime,
    pub(crate) swap_in: SimTime,
    pub(crate) balloon_share: f64,
}

impl MemoryConfig {
    /// Starts a config for a VM with `ram` bytes of guest memory.
    pub fn new(ram: ByteSize) -> Self {
        MemoryConfig {
            ram,
            vcpus: 1,
            bootstrap: NodeId::new(0),
            nodes: 1,
            budget: None,
            thresholds: PressureThresholds::default(),
            policy: None,
            // Local NVMe-ish swap tier: fast sequential write-out, slow
            // synchronous fault-in.
            swap_out: SimTime::from_micros(2),
            swap_in: SimTime::from_micros(80),
            balloon_share: 0.25,
        }
    }

    /// Number of vCPUs (sizes the kernel layout).
    pub fn vcpus(mut self, vcpus: usize) -> Self {
        self.vcpus = vcpus;
        self
    }

    /// The node the guest boots on (home of kernel pages).
    pub fn bootstrap(mut self, node: NodeId) -> Self {
        self.bootstrap = node;
        self
    }

    /// Nodes the VM spans — the borrow policy's destination universe.
    pub fn nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes;
        self
    }

    /// Per-node resident-page budget; pressure is resident/budget.
    pub fn node_budget(mut self, budget: ByteSize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Pressure watermarks (defaults: 0.70 / 0.85 / 0.95).
    pub fn thresholds(mut self, t: PressureThresholds) -> Self {
        self.thresholds = t;
        self
    }

    /// The reclaim policy to run under pressure.
    pub fn policy(mut self, policy: ReclaimPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Swap-tier latencies: per-page demotion and fault-in.
    pub fn swap_latencies(mut self, swap_out: SimTime, swap_in: SimTime) -> Self {
        self.swap_out = swap_out;
        self.swap_in = swap_in;
        self
    }

    /// Fraction of the budget the balloon may hold (default 0.25).
    pub fn balloon_share(mut self, share: f64) -> Self {
        self.balloon_share = share;
        self
    }

    /// Builds the memory subsystem; elasticity engages when both a
    /// budget and a policy were configured.
    pub fn build(self, profile: &HypervisorProfile) -> VmMemory {
        let mut mem = VmMemory::new(profile, self.vcpus, self.ram, self.bootstrap);
        mem.enable_elasticity(&self);
        mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_classify() {
        let t = PressureThresholds::default();
        assert_eq!(t.level(0, 100), MemoryPressure::Normal);
        assert_eq!(t.level(69, 100), MemoryPressure::Normal);
        assert_eq!(t.level(70, 100), MemoryPressure::Moderate);
        assert_eq!(t.level(85, 100), MemoryPressure::High);
        assert_eq!(t.level(95, 100), MemoryPressure::Critical);
        assert_eq!(t.level(200, 100), MemoryPressure::Critical);
        assert_eq!(
            t.level(10, 0),
            MemoryPressure::Normal,
            "no budget, no pressure"
        );
    }

    #[test]
    fn pressure_orders() {
        assert!(MemoryPressure::Critical > MemoryPressure::High);
        assert!(MemoryPressure::High > MemoryPressure::Moderate);
        assert!(MemoryPressure::Moderate > MemoryPressure::Normal);
    }

    #[test]
    fn default_priorities_pin_kernel_structure() {
        let r = BorrowReclaimer;
        assert_eq!(r.eviction_priority(PageClass::Private), Some(0));
        assert_eq!(r.eviction_priority(PageClass::KernelText), None);
        assert_eq!(r.eviction_priority(PageClass::PageTable), None);
        assert_eq!(r.eviction_priority(PageClass::DeviceRing), None);
        let b = BalloonReclaimer;
        assert_eq!(
            b.eviction_priority(PageClass::AppShared),
            None,
            "balloon is private-only"
        );
    }

    #[test]
    fn policy_labels_stable() {
        let labels: Vec<&str> = ReclaimPolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["borrow", "balloon", "deflate", "swap"]);
        for p in ReclaimPolicy::ALL {
            assert_eq!(make_reclaimer(p).policy(), p);
            assert_eq!(make_reclaimer(p).name(), p.label());
        }
    }
}
