//! Distributed checkpoint/restart (§6.4).
//!
//! FragVisor checkpoints an Aggregate VM by pausing all vCPUs, walking the
//! guest pseudo-physical space, pulling remote master copies over the
//! fabric, and streaming everything to the checkpointing node's disk. The
//! paper reports the SATA SSD (≈500 MB/s) as the bottleneck: fetching
//! remote pages over 56 Gbps InfiniBand overlaps with disk writes and
//! contributes little to total time (≤10 % overhead vs a single-machine
//! checkpoint).
//!
//! We model exactly that pipeline: disk time and fetch time overlap; the
//! checkpoint completes when the slower of the two finishes, plus fixed
//! pause/resume costs.

use comm::{LinkProfile, NodeId};
use sim_core::time::SimTime;
use sim_core::trace::TraceEvent;
use sim_core::units::{Bandwidth, ByteSize};

use crate::memory::VmMemory;

/// Fixed cost to pause and resume every vCPU (register dumps, quiescing).
const PAUSE_RESUME: SimTime = SimTime::from_micros(500);

/// Result of a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointReport {
    /// Total wall time of the checkpoint.
    pub duration: SimTime,
    /// Bytes written to the checkpoint image.
    pub bytes: ByteSize,
    /// Pages whose master copy had to be fetched from other nodes.
    pub remote_pages: u64,
    /// Pages already local to the checkpointing node.
    pub local_pages: u64,
    /// Time the disk was the constraint.
    pub disk_time: SimTime,
    /// Time the fabric was the constraint.
    pub fetch_time: SimTime,
}

/// Computes the checkpoint of `mem` taken on `node`, writing to a disk of
/// `disk` bandwidth over a fabric of `link` profile.
pub fn checkpoint(
    mem: &VmMemory,
    node: NodeId,
    disk: Bandwidth,
    link: LinkProfile,
) -> CheckpointReport {
    // O(1)/O(nodes) accounting reads off the directory's incremental
    // counters — checkpointing a multi-GiB guest never scans the
    // directory, so checkpoint *planning* stays off the fault path's
    // budget even when taken mid-run.
    let total_pages = mem.dsm.total_pages();
    let local_pages = mem.dsm.pages_owned_by(node);
    let remote_pages = total_pages - local_pages;
    let bytes = ByteSize::bytes(total_pages * 4096);
    let disk_time = disk.transfer_time(bytes);
    // Remote fetches stream page-sized messages; bandwidth-bound on the
    // fabric (request pipelining hides the per-page round trip).
    let fetch_bytes = ByteSize::bytes(remote_pages * (4096 + 64));
    let fetch_time = link.bandwidth.transfer_time(fetch_bytes)
        + if remote_pages > 0 {
            link.one_way(ByteSize::bytes(64))
        } else {
            SimTime::ZERO
        };
    let duration = disk_time.max(fetch_time) + PAUSE_RESUME;
    // Trace one event per slice. The image streams in node order, so a
    // slice's stream completes at its cumulative share of the pipeline
    // (times are relative to checkpoint start).
    let stream = disk_time.max(fetch_time);
    let mut cum = 0u64;
    for (owner, pages) in mem.dsm.owned_distribution() {
        cum += pages;
        let done_ns = (stream.as_nanos() as f64 * cum as f64 / total_pages as f64).round() as u64;
        mem.dsm.tracer().emit_with(|| TraceEvent::Checkpoint {
            at: done_ns,
            node: owner.0,
            bytes: pages * 4096,
        });
    }
    CheckpointReport {
        duration,
        bytes,
        remote_pages,
        local_pages,
        disk_time,
        fetch_time,
    }
}

/// Computes the restart (restore) time of a checkpoint image of `bytes`
/// on a disk of `disk` bandwidth, redistributing pages to `nodes` slices
/// over `link`.
pub fn restore(bytes: ByteSize, nodes: usize, disk: Bandwidth, link: LinkProfile) -> SimTime {
    let disk_time = disk.transfer_time(bytes);
    // Pages destined to other slices are pushed as they are read; with n
    // slices, (n-1)/n of the image crosses the fabric.
    let cross = if nodes > 1 {
        ByteSize::bytes(bytes.as_u64() * (nodes as u64 - 1) / nodes as u64)
    } else {
        ByteSize::ZERO
    };
    disk_time.max(link.bandwidth.transfer_time(cross)) + PAUSE_RESUME
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::HypervisorProfile;

    fn setup(dataset_gib: u64, nodes: u32) -> VmMemory {
        let profile = HypervisorProfile::fragvisor();
        let mut mem = crate::elastic::MemoryConfig::new(ByteSize::gib(dataset_gib + 2))
            .vcpus(nodes as usize)
            .nodes(nodes)
            .build(&profile);
        // Spread the dataset evenly across nodes (one slice each).
        let bytes_per_node =
            ByteSize::bytes(ByteSize::gib(dataset_gib).as_u64() / u64::from(nodes));
        for n in 0..nodes {
            let _ =
                mem.register_resident_dataset(&format!("data{n}"), bytes_per_node, NodeId::new(n));
        }
        mem
    }

    #[test]
    fn disk_is_the_bottleneck_on_infiniband() {
        let mem = setup(10, 4);
        let r = checkpoint(
            &mem,
            NodeId::new(0),
            Bandwidth::mb_per_sec(500.0),
            LinkProfile::infiniband_56g(),
        );
        assert!(r.disk_time > r.fetch_time);
        // 10 GiB at 500 MB/s ≈ 21.5 s.
        assert!((r.duration.as_secs_f64() - 21.5).abs() < 1.0, "{:?}", r);
    }

    #[test]
    fn distributed_overhead_is_small() {
        // The paper's claim: FragVisor checkpoint ≤10% over vanilla.
        let distributed = setup(20, 4);
        let single = setup(20, 1);
        let d = checkpoint(
            &distributed,
            NodeId::new(0),
            Bandwidth::mb_per_sec(500.0),
            LinkProfile::infiniband_56g(),
        );
        let s = checkpoint(
            &single,
            NodeId::new(0),
            Bandwidth::mb_per_sec(500.0),
            LinkProfile::infiniband_56g(),
        );
        let overhead = d.duration.as_secs_f64() / s.duration.as_secs_f64() - 1.0;
        assert!(overhead < 0.10, "overhead {overhead}");
        assert!(d.remote_pages > 0);
    }

    #[test]
    fn checkpoint_scales_with_dataset() {
        let small = checkpoint(
            &setup(10, 2),
            NodeId::new(0),
            Bandwidth::mb_per_sec(500.0),
            LinkProfile::infiniband_56g(),
        );
        let large = checkpoint(
            &setup(30, 2),
            NodeId::new(0),
            Bandwidth::mb_per_sec(500.0),
            LinkProfile::infiniband_56g(),
        );
        let ratio = large.duration.as_secs_f64() / small.duration.as_secs_f64();
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn slow_fabric_can_become_bottleneck() {
        let mem = setup(10, 4);
        let r = checkpoint(
            &mem,
            NodeId::new(0),
            Bandwidth::mb_per_sec(500.0),
            LinkProfile::ethernet_1g(),
        );
        assert!(r.fetch_time > r.disk_time);
    }

    #[test]
    fn checkpoint_traces_one_event_per_slice() {
        use sim_core::trace::{TraceEvent, Tracer};
        let mut mem = setup(8, 4);
        let tracer = Tracer::ring(64);
        mem.dsm.attach_tracer(tracer.clone());
        let r = checkpoint(
            &mem,
            NodeId::new(0),
            Bandwidth::mb_per_sec(500.0),
            LinkProfile::infiniband_56g(),
        );
        let events = tracer.snapshot();
        let slices: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Checkpoint { .. }))
            .collect();
        assert_eq!(slices.len(), 4);
        let total: u64 = slices
            .iter()
            .map(|e| match e {
                TraceEvent::Checkpoint { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum();
        assert_eq!(total, r.bytes.as_u64());
        // The last slice's stream completes when the pipeline drains.
        let last = slices.last().unwrap().at();
        assert_eq!(last, (r.duration - PAUSE_RESUME).as_nanos());
    }

    #[test]
    fn restore_roundtrip() {
        let t1 = restore(
            ByteSize::gib(10),
            1,
            Bandwidth::mb_per_sec(500.0),
            LinkProfile::infiniband_56g(),
        );
        let t4 = restore(
            ByteSize::gib(10),
            4,
            Bandwidth::mb_per_sec(500.0),
            LinkProfile::infiniband_56g(),
        );
        // Redistribution hides behind the disk on fast fabric.
        assert!(t4 <= t1 + SimTime::from_millis(1), "{t4} vs {t1}");
        assert!(t1.as_secs_f64() > 20.0);
    }
}
