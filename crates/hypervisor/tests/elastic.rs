//! End-to-end memory elasticity: a VM under a tight per-node budget runs
//! each reclaim policy, finishes, audits clean, and reports the expected
//! counters.

use dsm::{Access, PageId};
use hypervisor::program::Scripted;
use hypervisor::{
    HypervisorProfile, MemoryConfig, MemoryPressure, Op, Placement, ReclaimPolicy, VmBuilder, VmSim,
};
use sim_core::units::ByteSize;

const NODES: usize = 4;

/// vCPU `v`'s private working-set size: node 0 far above the per-node
/// budget, later nodes progressively lighter. The imbalance matters:
/// borrowing needs at least one donor below the moderate watermark.
fn ws(v: u32, pages_per_vcpu: u32) -> u32 {
    pages_per_vcpu / (v + 1)
}

/// A VM whose vCPU 0 writes a private working set far above the per-node
/// budget (forcing reclaim on the fault path) while the other slices stay
/// light enough to lend memory.
fn pressured_vm(policy: Option<ReclaimPolicy>, pages_per_vcpu: u32) -> VmSim {
    let mut cfg = MemoryConfig::new(ByteSize::gib(4)).node_budget(ByteSize::kib(4 * 600));
    if let Some(p) = policy {
        cfg = cfg.policy(p);
    }
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), NODES).with_memory(cfg);
    for v in 0..NODES as u32 {
        let set = ws(v, pages_per_vcpu);
        // Two passes so ballooned/swapped pages get re-touched.
        let script: Vec<Op> = (0..2 * set)
            .map(|i| Op::Touch {
                page: PageId::new(1_000_000 + v * 100_000 + (i % set)),
                access: Access::Write,
            })
            .collect();
        b = b.vcpu(Placement::new(v, 0), Box::new(Scripted::new(script)));
    }
    b.build()
}

#[test]
fn no_policy_means_no_elasticity() {
    let mut sim = pressured_vm(None, 1000);
    sim.run();
    assert!(sim.world.mem.reclaim_counters().is_none());
    assert_eq!(sim.world.stats.pressure_stalls, 0);
    assert_eq!(sim.world.stats.pages_evicted, 0);
}

#[test]
fn every_policy_runs_reclaims_and_audits_clean() {
    for policy in ReclaimPolicy::ALL {
        let mut sim = pressured_vm(Some(policy), 1000);
        let tracer = sim.enable_tracing(1 << 20);
        sim.run();
        let stats = &sim.world.stats;
        assert!(
            stats.pressure_stalls > 0,
            "{policy:?}: the working set exceeds the budget, reclaim must fire"
        );
        let reclaimed = match policy {
            ReclaimPolicy::Borrow => stats.pages_evicted,
            ReclaimPolicy::Balloon => stats.pages_ballooned,
            ReclaimPolicy::Deflate => stats.pages_deflated,
            ReclaimPolicy::Swap => stats.pages_swapped,
        };
        assert!(reclaimed > 0, "{policy:?}: reclaimed nothing");
        sim_core::audit::assert_clean(&tracer.snapshot());
    }
}

#[test]
fn borrow_charges_stall_time_but_keeps_pages_resident() {
    let mut sim = pressured_vm(Some(ReclaimPolicy::Borrow), 1000);
    sim.run();
    let stats = &sim.world.stats;
    assert!(stats.reclaim_latency > sim_core::time::SimTime::ZERO);
    // Borrowing moves pages, never discards them: every touched page is
    // still in the directory.
    for v in 0..NODES as u32 {
        for i in 0..ws(v, 1000) {
            let p = PageId::new(1_000_000 + v * 100_000 + i);
            assert!(
                sim.world.mem.dsm.owner(p).is_some(),
                "borrow must not lose {p}"
            );
        }
    }
}

#[test]
fn swap_pays_asymmetric_refault_cost() {
    // The second pass re-touches swapped pages: swap-ins must show up.
    let mut sim = pressured_vm(Some(ReclaimPolicy::Swap), 1000);
    sim.run();
    let c = sim.world.mem.reclaim_counters().unwrap();
    assert!(c.pages_swapped > 0);
    assert!(
        c.pages_swapped_in > 0,
        "re-touching a swapped page must swap it back in"
    );
}

#[test]
fn balloon_refaults_on_reuse() {
    let mut sim = pressured_vm(Some(ReclaimPolicy::Balloon), 1000);
    sim.run();
    let c = sim.world.mem.reclaim_counters().unwrap();
    assert!(c.pages_ballooned > 0);
    assert!(c.refaults > 0, "re-touching a ballooned page must refault");
}

#[test]
fn deflate_shrinks_the_allocation_limit() {
    let mut sim = pressured_vm(Some(ReclaimPolicy::Deflate), 1000);
    let before = sim.world.mem.alloc.limit_pages();
    sim.run();
    let after = sim.world.mem.alloc.limit_pages();
    assert!(
        after < before,
        "deflation must lower the limit ({before} -> {after})"
    );
}

#[test]
fn pressure_level_is_reported() {
    let mut sim = pressured_vm(Some(ReclaimPolicy::Borrow), 1000);
    sim.run();
    // After reclaim the pressured nodes sit at or below High; the level
    // query itself must be consistent with the thresholds.
    for v in 0..NODES as u32 {
        let level = sim.world.mem.pressure_of(comm::NodeId::new(v));
        assert!(level <= MemoryPressure::Critical);
    }
}

#[test]
fn same_seed_elastic_runs_replay_bit_for_bit() {
    for policy in ReclaimPolicy::ALL {
        let run = || {
            let mut sim = pressured_vm(Some(policy), 600);
            let t = sim.run();
            let c = *sim.world.mem.reclaim_counters().unwrap();
            (
                t,
                sim.world.mem.dsm.stats().total_faults(),
                sim.world.fabric.messages_sent(),
                c.pressure_stalls,
                c.pages_evicted + c.pages_ballooned + c.pages_deflated + c.pages_swapped,
                c.reclaim_latency,
            )
        };
        assert_eq!(run(), run(), "{policy:?} must replay deterministically");
    }
}
