//! Differential property test for the fleet engine's headline contract:
//! a serial run (`jobs = 1`) and a sharded run (`jobs = N`) of the same
//! fleet must be **byte-identical** — same state digest, same window
//! count, same delivered-event count, same virtual finish time, and the
//! same per-tenant latency samples — for arbitrary seeds, shard counts,
//! tenant mixes, and worker counts.
//!
//! This is the property that makes conservative windowing trustworthy:
//! if any cross-shard message could arrive inside the window it departed
//! in, or the merge admitted messages in a thread-dependent order, some
//! generated fleet here would diverge. The generator therefore leans on
//! the shapes that stress synchronization: single-tenant shards, self-
//! peered tenants, zero think time (densest message bursts), mixed
//! traffic classes (different ingress stretches), and tenant counts that
//! do not divide evenly across workers.

use hypervisor::fleet::{FleetConfig, FleetReport, FleetSim, TenantSpec};
use proptest::prelude::*;
use sim_core::time::SimTime;

use comm::MsgClass;

/// A generated tenant mix entry, scaled into a [`TenantSpec`] once the
/// fleet's total tenant count is known.
#[derive(Clone, Debug)]
struct RawSpec {
    peer: u32,
    rounds: u32,
    bytes: u64,
    service_us: u64,
    think_us: u64,
    pages: u64,
    class: MsgClass,
}

fn class() -> impl Strategy<Value = MsgClass> {
    prop_oneof![
        Just(MsgClass::Interrupt),
        Just(MsgClass::Io),
        Just(MsgClass::Dsm),
        Just(MsgClass::Checkpoint),
    ]
}

fn raw_spec() -> impl Strategy<Value = RawSpec> {
    // The proptest shim caps tuple strategies at four elements, so the
    // seven spec fields are generated as a pair of sub-tuples.
    (
        (0u32..=u32::MAX, 1u32..=3, 64u64..=16_384, 1u64..=50),
        (
            0u64..=80, // zero think time = densest request bursts
            0u64..=8,  // zero pages = no DSM traffic for some tenants
            class(),
        ),
    )
        .prop_map(
            |((peer, rounds, bytes, service_us), (think_us, pages, class))| RawSpec {
                peer,
                rounds,
                bytes,
                service_us,
                think_us,
                pages,
                class,
            },
        )
}

/// Builds a fleet from generated parameters. `raw.peer` is reduced
/// modulo the tenant count, so self-peered tenants and hot receivers
/// both occur naturally.
fn build(shards: u32, tenants_per_shard: u32, seed: u64, raw: &[RawSpec]) -> FleetSim {
    let mut cfg = FleetConfig::new(shards, tenants_per_shard);
    cfg.seed = seed;
    let total = cfg.tenants();
    let specs: Vec<TenantSpec> = (0..total)
        .map(|t| {
            let r = &raw[t as usize % raw.len()];
            TenantSpec {
                peer: r.peer % total,
                rounds: r.rounds,
                bytes: r.bytes,
                service: SimTime::from_micros(r.service_us),
                think: SimTime::from_micros(r.think_us),
                pages: r.pages,
                class: r.class,
            }
        })
        .collect();
    FleetSim::new(cfg, specs)
}

/// Asserts every observable of two reports is equal.
fn assert_identical(a: &FleetReport, b: &FleetReport, jobs: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.digest, b.digest, "digest diverged at jobs={}", jobs);
    prop_assert_eq!(a.windows, b.windows, "windows diverged at jobs={}", jobs);
    prop_assert_eq!(a.events, b.events, "events diverged at jobs={}", jobs);
    prop_assert_eq!(
        a.fleet_msgs,
        b.fleet_msgs,
        "fleet_msgs diverged at jobs={}",
        jobs
    );
    prop_assert_eq!(a.finish, b.finish, "finish diverged at jobs={}", jobs);
    prop_assert_eq!(a.tenants.len(), b.tenants.len());
    for (x, y) in a.tenants.iter().zip(b.tenants.iter()) {
        prop_assert_eq!(x.tenant, y.tenant);
        prop_assert_eq!(
            &x.samples,
            &y.samples,
            "tenant {} samples diverged at jobs={}",
            x.tenant,
            jobs
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary fleets produce byte-identical reports at every worker
    /// count from serial up to one worker per shard.
    #[test]
    fn serial_and_sharded_fleets_are_byte_identical(
        shards in 1u32..=4,
        tenants_per_shard in 1u32..=5,
        seed in 0u64..=u64::MAX,
        raw in proptest::collection::vec(raw_spec(), 1..12),
    ) {
        let sim = build(shards, tenants_per_shard, seed, &raw);
        let serial = sim.run(1);
        // Every client must finish all its rounds — a fleet that hangs
        // or drops messages could be "identical" by both being wrong.
        for (t, ts) in serial.tenants.iter().enumerate() {
            let r = &raw[t % raw.len()];
            prop_assert_eq!(ts.samples.len(), r.rounds as usize,
                "tenant {} finished {} of {} rounds", t, ts.samples.len(), r.rounds);
        }
        for jobs in 2..=(shards as usize) {
            let sharded = sim.run(jobs);
            assert_identical(&serial, &sharded, jobs)?;
        }
    }

    /// Re-running the *same* fleet serially is deterministic, and a
    /// different seed changes the digest (the digest actually covers
    /// state, rather than being constant).
    #[test]
    fn digest_is_deterministic_and_seed_sensitive(
        seed in 0u64..=u64::MAX,
        raw in proptest::collection::vec(raw_spec(), 1..6),
    ) {
        let sim = build(2, 3, seed, &raw);
        prop_assert_eq!(sim.run(1).digest, sim.run(1).digest);
        let other = build(2, 3, seed ^ 0xDEAD_BEEF, &raw);
        prop_assert_ne!(sim.run(1).digest, other.run(1).digest);
    }
}
