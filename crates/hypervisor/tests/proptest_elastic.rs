//! Property tests for memory elasticity: arbitrary access sequences under
//! arbitrary budgets and reclaim policies must conserve pages against a
//! naive reference model, keep the DSM directory consistent, audit clean,
//! and replay deterministically.

use std::collections::BTreeSet;

use dsm::{Access, PageId};
use hypervisor::program::Scripted;
use hypervisor::{HypervisorProfile, MemoryConfig, Op, Placement, ReclaimPolicy, VmBuilder, VmSim};
use proptest::prelude::*;
use sim_core::units::ByteSize;

/// One step of a generated workload: which vCPU touches which page of a
/// small shared universe, read or write.
#[derive(Debug, Clone, Copy)]
struct GenTouch {
    vcpu: u8,
    page: u16,
    write: bool,
}

fn gen_touch() -> impl Strategy<Value = GenTouch> {
    (0u8..4, 0u16..400, any::<bool>()).prop_map(|(vcpu, page, write)| GenTouch {
        vcpu,
        page,
        write,
    })
}

fn gen_policy() -> impl Strategy<Value = ReclaimPolicy> {
    prop_oneof![
        Just(ReclaimPolicy::Borrow),
        Just(ReclaimPolicy::Balloon),
        Just(ReclaimPolicy::Deflate),
        Just(ReclaimPolicy::Swap),
    ]
}

const VCPUS: u32 = 3;
const PAGE_BASE: u32 = 2_000_000;

/// Builds a VM whose vCPUs replay the generated touch sequence, split by
/// vCPU id, under a deliberately tight per-node budget so reclaim fires.
fn build(touches: &[GenTouch], policy: ReclaimPolicy, budget_pages: u64, seed: u64) -> VmSim {
    let cfg = MemoryConfig::new(ByteSize::gib(2))
        .node_budget(ByteSize::kib(4 * budget_pages))
        .policy(policy);
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), VCPUS as usize)
        .seed(seed)
        .with_memory(cfg);
    for v in 0..VCPUS {
        let script: Vec<Op> = touches
            .iter()
            .filter(|t| u32::from(t.vcpu) % VCPUS == v)
            .map(|t| Op::Touch {
                page: PageId::new(PAGE_BASE + u32::from(t.page)),
                access: if t.write { Access::Write } else { Access::Read },
            })
            .collect();
        b = b.vcpu(Placement::new(v, 0), Box::new(Scripted::new(script)));
    }
    b.build()
}

/// The naive reference model: the set of pages the workload ever touched.
/// Elastic reclaim may move, discard, or swap pages, but it must never
/// create or leak one — every touched page is accounted for exactly once.
fn touched_pages(touches: &[GenTouch]) -> BTreeSet<PageId> {
    touches
        .iter()
        .map(|t| PageId::new(PAGE_BASE + u32::from(t.page)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: after any access/pressure/reclaim interleaving, each
    /// touched page is either resident in the DSM directory or was
    /// discarded by balloon/deflate — exactly one of the two — and
    /// swapped-out pages always keep their directory entry.
    #[test]
    fn reclaim_conserves_pages_against_reference_model(
        touches in proptest::collection::vec(gen_touch(), 1..120),
        policy in gen_policy(),
        budget_pages in 8u64..80,
        seed in 0u64..500,
    ) {
        let mut sim = build(&touches, policy, budget_pages, seed);
        let tracer = sim.enable_tracing(1 << 18);
        sim.run();
        let mem = &sim.world.mem;
        for page in touched_pages(&touches) {
            let resident = mem.dsm.owner(page).is_some();
            let released = mem.page_released(page);
            prop_assert!(
                resident ^ released,
                "{policy:?}: page {page} resident={resident} released={released}; \
                 each touched page must be exactly one of the two"
            );
            if mem.page_swapped(page) {
                prop_assert!(
                    resident,
                    "{policy:?}: swapped page {page} lost its directory entry"
                );
            }
        }
        // Only balloon/deflate discard; borrow/swap keep every page.
        if matches!(policy, ReclaimPolicy::Borrow | ReclaimPolicy::Swap) {
            for page in touched_pages(&touches) {
                prop_assert!(mem.dsm.owner(page).is_some());
            }
        }
        prop_assert!(mem.dsm.check_invariants().is_ok(), "directory corrupt");
        sim_core::audit::assert_clean(&tracer.snapshot());
    }

    /// The resident-page accounting the pressure model uses never exceeds
    /// what the directory actually holds, and reclaim counters line up
    /// with the policy that ran.
    #[test]
    fn counters_match_policy(
        touches in proptest::collection::vec(gen_touch(), 20..120),
        policy in gen_policy(),
        seed in 0u64..100,
    ) {
        let mut sim = build(&touches, policy, 16, seed);
        sim.run();
        let c = *sim.world.mem.reclaim_counters().unwrap();
        let (own, other) = match policy {
            ReclaimPolicy::Borrow => (c.pages_evicted,
                c.pages_ballooned + c.pages_deflated + c.pages_swapped),
            ReclaimPolicy::Balloon => (c.pages_ballooned,
                c.pages_evicted + c.pages_deflated + c.pages_swapped),
            ReclaimPolicy::Deflate => (c.pages_deflated,
                c.pages_evicted + c.pages_ballooned + c.pages_swapped),
            ReclaimPolicy::Swap => (c.pages_swapped,
                c.pages_evicted + c.pages_ballooned + c.pages_deflated),
        };
        prop_assert_eq!(other, 0, "{:?} must only use its own mechanism", policy);
        // Borrow legitimately reclaims nothing when no node is below the
        // moderate watermark (no donor); the other policies always can.
        if c.pressure_stalls > 0 && policy != ReclaimPolicy::Borrow {
            prop_assert!(own > 0, "{:?} stalled without reclaiming", policy);
        }
    }

    /// Same seed, same sequence, same policy: bit-for-bit replay.
    #[test]
    fn elastic_runs_replay_deterministically(
        touches in proptest::collection::vec(gen_touch(), 1..60),
        policy in gen_policy(),
        budget_pages in 8u64..64,
        seed in 0u64..200,
    ) {
        let run = || {
            let mut sim = build(&touches, policy, budget_pages, seed);
            let t = sim.run();
            let c = *sim.world.mem.reclaim_counters().unwrap();
            (
                t,
                sim.world.mem.dsm.stats().total_faults(),
                sim.world.fabric.messages_sent(),
                c.pressure_stalls,
                c.pages_evicted + c.pages_ballooned + c.pages_deflated + c.pages_swapped,
                c.pages_swapped_in,
                c.refaults,
                c.reclaim_latency,
            )
        };
        prop_assert_eq!(run(), run());
    }
}
