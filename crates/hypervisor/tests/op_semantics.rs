//! Semantics tests for the vCPU op machine: blocking, wakeups, barriers,
//! fairness, and the migration/wakeup races.

use hypervisor::program::Scripted;
use hypervisor::{GuestMsg, HypervisorProfile, Op, Placement, ProgCtx, Program, VcpuId, VmBuilder};
use sim_core::time::SimTime;

fn ms(n: u64) -> SimTime {
    SimTime::from_millis(n)
}

/// A program that records what each receive delivered.
struct RecordingReceiver {
    ops: Vec<Op>,
    idx: usize,
    pub log: std::rc::Rc<std::cell::RefCell<Vec<GuestMsg>>>,
}

impl RecordingReceiver {
    fn new(ops: Vec<Op>) -> (Self, std::rc::Rc<std::cell::RefCell<Vec<GuestMsg>>>) {
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        (
            RecordingReceiver {
                ops,
                idx: 0,
                log: std::rc::Rc::clone(&log),
            },
            log,
        )
    }
}

impl Program for RecordingReceiver {
    fn next(&mut self, cx: &mut ProgCtx<'_>) -> Op {
        if let Some(msg) = cx.delivered.take() {
            self.log.borrow_mut().push(msg);
        }
        let op = self.ops.get(self.idx).cloned().unwrap_or(Op::Done);
        self.idx += 1;
        op
    }
}

#[test]
fn recv_any_prefers_local_messages() {
    // vCPU1 receives one local message; RecvAny must deliver it.
    let (receiver, log) = RecordingReceiver::new(vec![Op::RecvAny]);
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
    b = b.vcpu(
        Placement::new(0, 0),
        Box::new(Scripted::new([Op::LocalSend {
            to: VcpuId::new(1),
            tag: 9,
            bytes: 100,
        }])),
    );
    b = b.vcpu(Placement::new(1, 0), Box::new(receiver));
    let mut sim = b.build();
    let _ = sim.run();
    let log = log.borrow();
    assert_eq!(log.len(), 1);
    assert!(matches!(log[0], GuestMsg::Local { tag: 9, .. }));
}

#[test]
fn pending_ipis_accumulate_and_drain_one_by_one() {
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
    // vCPU0 fires three IPIs immediately; vCPU1 waits for all three after
    // a delay (so they are all pending when it first waits).
    b = b.vcpu(
        Placement::new(0, 0),
        Box::new(Scripted::new([
            Op::SendIpi(VcpuId::new(1)),
            Op::SendIpi(VcpuId::new(1)),
            Op::SendIpi(VcpuId::new(1)),
        ])),
    );
    b = b.vcpu(
        Placement::new(1, 0),
        Box::new(Scripted::new([
            Op::Sleep(ms(1)),
            Op::WaitIpi,
            Op::WaitIpi,
            Op::WaitIpi,
            Op::Compute(ms(1)),
        ])),
    );
    let mut sim = b.build();
    let done = sim.run();
    // All three waits satisfied from the pending count; no deadlock.
    assert_eq!(done, ms(2));
    assert_eq!(sim.world.stats.ipis.events, 3);
}

#[test]
fn barriers_are_reusable_after_completion() {
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
    for v in 0..2 {
        b = b.vcpu(
            Placement::new(v, 0),
            Box::new(Scripted::new([
                Op::Compute(ms(u64::from(v) + 1)),
                Op::Barrier { id: 1, parties: 2 },
                Op::Compute(ms(u64::from(v) + 1)),
                // Same id again: a fresh barrier instance.
                Op::Barrier { id: 1, parties: 2 },
                Op::Compute(ms(1)),
            ])),
        );
    }
    let done = b.build().run();
    // Phase 1 ends at 2ms, phase 2 at 4ms, tail at 5ms.
    assert_eq!(done, ms(5));
}

#[test]
fn zero_cost_spinner_does_not_starve_peers() {
    /// A program issuing unbounded zero-latency ops.
    struct Spinner {
        left: u64,
    }
    impl Program for Spinner {
        fn next(&mut self, _cx: &mut ProgCtx<'_>) -> Op {
            if self.left == 0 {
                return Op::Done;
            }
            self.left -= 1;
            // A local touch: zero virtual time once owned.
            Op::Touch {
                page: dsm::PageId::new(999_999),
                access: dsm::Access::Write,
            }
        }
    }
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
    b = b.vcpu(Placement::new(0, 0), Box::new(Spinner { left: 100_000 }));
    b = b.vcpu(
        Placement::new(1, 0),
        Box::new(Scripted::new([Op::Compute(ms(1))])),
    );
    let mut sim = b.build();
    let done = sim.run();
    // The spinner burns zero virtual time; the peer still finishes at 1ms
    // and the engine terminates (per-event op budget forces rescheduling,
    // not livelock).
    assert_eq!(done, ms(1));
}

#[test]
fn message_arriving_during_migration_is_delivered_after() {
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 3);
    // Sender fires a local message at ~1ms (after compute).
    b = b.vcpu(
        Placement::new(0, 0),
        Box::new(Scripted::new([
            Op::Compute(ms(1)),
            Op::LocalSend {
                to: VcpuId::new(1),
                tag: 5,
                bytes: 64,
            },
        ])),
    );
    let (receiver, log) = RecordingReceiver::new(vec![Op::LocalRecv, Op::Compute(ms(1))]);
    b = b.vcpu(Placement::new(1, 0), Box::new(receiver));
    let mut sim = b.build();
    // Let the receiver block, then start a migration that will be in
    // flight when the message lands.
    sim.run_until(ms(1));
    assert!(sim.migrate_vcpu(VcpuId::new(1), Placement::new(2, 0)));
    let _ = sim.run();
    assert_eq!(log.borrow().len(), 1);
    assert_eq!(
        sim.world.placement_of(VcpuId::new(1)).node,
        comm::NodeId::new(2)
    );
}

#[test]
fn sleeping_vcpu_migrates_and_still_wakes() {
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
    b = b.vcpu(
        Placement::new(0, 0),
        Box::new(Scripted::new([Op::Sleep(ms(10)), Op::Compute(ms(1))])),
    );
    let mut sim = b.build();
    sim.run_until(ms(2));
    assert!(sim.migrate_vcpu(VcpuId::new(0), Placement::new(1, 0)));
    let done = sim.run();
    // Sleep must not be cut short by the migration resume.
    assert_eq!(done, ms(11));
}

#[test]
fn computing_vcpu_migration_preserves_total_work() {
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
    b = b.vcpu(
        Placement::new(0, 0),
        Box::new(Scripted::new([Op::Compute(ms(100))])),
    );
    let mut sim = b.build();
    sim.run_until(ms(30));
    assert!(sim.migrate_vcpu(VcpuId::new(0), Placement::new(1, 0)));
    let done = sim.run();
    // 30ms done + 86us migration + 70ms remaining.
    let expect = ms(100) + SimTime::from_micros(86);
    assert_eq!(done, expect);
}

#[test]
fn back_to_back_migrations_work() {
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 3);
    b = b.vcpu(
        Placement::new(0, 0),
        Box::new(Scripted::new([Op::Compute(ms(50))])),
    );
    let mut sim = b.build();
    sim.run_until(ms(10));
    assert!(sim.migrate_vcpu(VcpuId::new(0), Placement::new(1, 0)));
    // A second request while the first is in flight must be refused.
    assert!(!sim.migrate_vcpu(VcpuId::new(0), Placement::new(2, 0)));
    sim.run_until(ms(20));
    assert!(sim.migrate_vcpu(VcpuId::new(0), Placement::new(2, 0)));
    let done = sim.run();
    assert_eq!(
        sim.world.placement_of(VcpuId::new(0)).node,
        comm::NodeId::new(2)
    );
    assert!(done > ms(50));
    assert_eq!(sim.world.stats.migrations, 2);
}

#[test]
fn console_writes_route_to_bootstrap_pty_worker() {
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
    b = b.vcpu(
        Placement::new(0, 0),
        Box::new(Scripted::new([Op::ConsoleWrite { bytes: 80 }])),
    );
    b = b.vcpu(
        Placement::new(1, 0),
        Box::new(Scripted::new([Op::ConsoleWrite { bytes: 120 }])),
    );
    let mut sim = b.build();
    let _ = sim.run();
    let out = sim.world.console_out();
    assert_eq!(out.events, 2);
    assert_eq!(out.bytes, 200);
    // Only the remote slice's write crossed the fabric.
    assert_eq!(sim.world.fabric.stats().get(&comm::MsgClass::Io).events, 1);
}

#[test]
fn queue_full_sends_are_retried_not_lost() {
    // 300 back-to-back zero-latency sends overflow the 256-descriptor
    // ring; every one must eventually transmit (backpressure, not drops).
    let sends = 300u64;
    let ops: Vec<Op> = (0..sends)
        .map(|i| Op::NetSend {
            conn: i,
            bytes: sim_core::units::ByteSize::kib(1),
            payload: vec![],
        })
        .collect();
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2).with_net(comm::NodeId::new(0));
    b = b.vcpu(Placement::new(1, 0), Box::new(Scripted::new(ops)));
    let mut sim = b.build();
    let _ = sim.run();
    assert!(
        sim.world.stats.tx_drops > 0,
        "the test must actually hit backpressure"
    );
    // Every send produced a kick on the fabric (none silently lost).
    let io = sim.world.fabric.stats().get(&comm::MsgClass::Io);
    assert!(
        io.events >= sends,
        "only {} kicks for {sends} sends",
        io.events
    );
}

#[test]
fn net_send_without_client_transmits_into_the_void() {
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2).with_net(comm::NodeId::new(0));
    b = b.vcpu(
        Placement::new(1, 0),
        Box::new(Scripted::new([Op::NetSend {
            conn: 1,
            bytes: sim_core::units::ByteSize::kib(64),
            payload: vec![],
        }])),
    );
    let mut sim = b.build();
    let _ = sim.run();
    assert_eq!(sim.world.stats.completed_requests, 0);
    assert!(sim.world.fabric.messages_sent() > 0);
}
