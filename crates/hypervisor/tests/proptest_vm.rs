//! Property tests for the whole VM simulator: arbitrary (deadlock-free)
//! programs over arbitrary placements must terminate, stay deterministic,
//! and survive migrations injected at arbitrary times.

use hypervisor::program::Scripted;
use hypervisor::{HypervisorProfile, Op, Placement, VcpuId, VmBuilder, VmSim};
use proptest::prelude::*;
use sim_core::time::SimTime;

/// A deadlock-free op for the generator: no unmatched blocking receives.
#[derive(Debug, Clone)]
enum GenOp {
    Compute(u64),
    Touch(u32),
    Batch(u32, u8),
    Syscall,
    Alloc(u8),
    Sleep(u64),
    Barrier,
    Console(u16),
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (1u64..2_000).prop_map(GenOp::Compute),
        (0u32..64).prop_map(GenOp::Touch),
        (0u32..64, 1u8..16).prop_map(|(p, n)| GenOp::Batch(p, n)),
        Just(GenOp::Syscall),
        (1u8..64).prop_map(GenOp::Alloc),
        (1u64..500).prop_map(GenOp::Sleep),
        Just(GenOp::Barrier),
        (1u16..512).prop_map(GenOp::Console),
    ]
}

fn materialize(ops: &[GenOp], vcpus: u32, barrier_seq: &mut u32) -> Vec<Op> {
    ops.iter()
        .map(|op| match *op {
            GenOp::Compute(us) => Op::Compute(SimTime::from_micros(us)),
            GenOp::Touch(p) => Op::Touch {
                page: dsm::PageId::new(3_000_000 + p),
                access: dsm::Access::Write,
            },
            GenOp::Batch(p, n) => Op::TouchBatch(
                (0..u32::from(n))
                    .map(|i| (dsm::PageId::new(3_000_000 + p + i), dsm::Access::Read))
                    .collect(),
            ),
            GenOp::Syscall => Op::Kernel(guest::KernelOp::Syscall),
            GenOp::Alloc(n) => Op::Kernel(guest::KernelOp::AllocPages(u64::from(n))),
            GenOp::Sleep(us) => Op::Sleep(SimTime::from_micros(us)),
            GenOp::Barrier => {
                *barrier_seq += 1;
                Op::Barrier {
                    id: *barrier_seq,
                    parties: vcpus,
                }
            }
            GenOp::Console(b) => Op::ConsoleWrite {
                bytes: u64::from(b),
            },
        })
        .collect()
}

/// Builds a VM where every vCPU runs the same op skeleton (so barriers
/// always have all parties) on its own node.
fn build(ops: &[GenOp], vcpus: u32, seed: u64) -> VmSim {
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), vcpus as usize).seed(seed);
    for v in 0..vcpus {
        let mut barrier_seq = 0;
        let script = materialize(ops, vcpus, &mut barrier_seq);
        b = b.vcpu(Placement::new(v, 0), Box::new(Scripted::new(script)));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated workload terminates, and identical runs agree on
    /// every observable statistic.
    #[test]
    fn terminates_and_is_deterministic(
        ops in proptest::collection::vec(gen_op(), 1..40),
        vcpus in 1u32..5,
        seed in 0u64..1_000,
    ) {
        let run = || {
            let mut sim = build(&ops, vcpus, seed);
            let makespan = sim.run();
            (
                makespan,
                sim.world.mem.dsm.stats().total_faults(),
                sim.world.fabric.messages_sent(),
                sim.engine.delivered(),
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
    }

    /// Injecting a migration at an arbitrary point never wedges the VM:
    /// it still terminates with every vCPU done, and the total virtual
    /// time only grows.
    #[test]
    fn migration_at_any_time_is_safe(
        ops in proptest::collection::vec(gen_op(), 2..30),
        vcpus in 2u32..5,
        cut_us in 1u64..5_000,
        victim in 0u32..5,
        seed in 0u64..100,
    ) {
        let victim = victim % vcpus;
        let mut baseline = build(&ops, vcpus, seed);
        let t_base = baseline.run();

        let mut sim = build(&ops, vcpus, seed);
        sim.run_until(SimTime::from_micros(cut_us).min(t_base));
        // Move the victim to the next node (there are `vcpus` nodes).
        let target = (victim + 1) % vcpus;
        let _ = sim.migrate_vcpu(
            VcpuId::new(victim),
            Placement::new(target, 8),
        );
        let t_mig = sim.run();
        // All programs finished.
        for v in 0..vcpus {
            prop_assert!(
                sim.world.stats.vcpu_finish[v as usize].is_some(),
                "vCPU {v} never finished after migration"
            );
        }
        // Timing may move either way — consolidating two vCPUs onto one
        // node *removes* DSM faults between them (the paper's thesis!) —
        // but it must stay within a sane envelope of the baseline.
        prop_assert!(
            t_mig.as_nanos() <= t_base.as_nanos() * 4 + 1_000_000,
            "migrated run exploded: {t_mig} vs {t_base}"
        );
        prop_assert!(t_mig > SimTime::ZERO);
    }

    /// Overcommitting the same workload on one pCPU is never faster than
    /// spreading it (the core premise of the paper's comparison).
    #[test]
    fn overcommit_is_never_faster(
        ops in proptest::collection::vec(gen_op(), 1..25),
        vcpus in 2u32..5,
    ) {
        let spread_time = build(&ops, vcpus, 7).run();
        let mut b = VmBuilder::new(HypervisorProfile::single_machine(), 1).seed(7);
        for _ in 0..vcpus {
            let mut barrier_seq = 0;
            let script = materialize(&ops, vcpus, &mut barrier_seq);
            b = b.vcpu(Placement::new(0, 0), Box::new(Scripted::new(script)));
        }
        let packed_time = b.build().run();
        // Allow a sliver for rounding: distributed runs pay DSM costs but
        // gain vcpus-fold CPU capacity; the generated workloads are
        // compute-dominated enough that packing never wins by more than
        // the fault overhead... so only assert the weak direction when
        // compute dominates.
        let total_compute: u64 = ops
            .iter()
            .map(|o| match o {
                GenOp::Compute(us) => *us,
                _ => 0,
            })
            .sum();
        if total_compute > 2_000 {
            prop_assert!(
                packed_time + SimTime::from_micros(1) >= spread_time,
                "packed {packed_time} vs spread {spread_time}"
            );
        }
    }
}
