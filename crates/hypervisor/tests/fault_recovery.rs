//! End-to-end fault injection: scripted crashes, heartbeat detection,
//! quarantine + checkpoint restore, and deterministic replay.

use comm::NodeId;
use dsm::PageClass;
use hypervisor::failure::FailureConfig;
use hypervisor::program::FixedCompute;
use hypervisor::reliability::force_drain;
use hypervisor::vm::{Placement, VmBuilder, VmSim};
use hypervisor::{HypervisorProfile, VcpuId};
use proptest::prelude::*;
use sim_core::fault::FaultPlan;
use sim_core::time::SimTime;
use sim_core::trace::TraceEvent;
use sim_core::units::{Bandwidth, ByteSize};

fn ms(n: u64) -> SimTime {
    SimTime::from_millis(n)
}

/// A 4-node FragVisor VM with one 100 ms vCPU per node and a dataset
/// homed on node 2 (the crash victim in most scenarios).
fn build_vm(plan: FaultPlan, detector: Option<FailureConfig>) -> VmSim {
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 4).with_fault_plan(plan);
    if let Some(cfg) = detector {
        b = b.with_failure_detector(cfg);
    }
    for i in 0..4 {
        b = b.vcpu(Placement::new(i, 0), Box::new(FixedCompute::new(ms(100))));
    }
    let mut sim = b.build();
    let _ = sim
        .world
        .mem
        .alloc_app_region("data", 256, NodeId::new(2), PageClass::Private);
    sim
}

fn detector() -> FailureConfig {
    FailureConfig {
        heartbeat_interval: ms(1),
        miss_threshold: 3,
        restore_to: NodeId::new(0),
        restore_disk: Bandwidth::mb_per_sec(500.0),
        checkpoint_interval: ms(50),
        prediction_lead: None,
    }
}

#[test]
fn crash_is_detected_quarantined_and_restored() {
    let plan = FaultPlan::scripted(7).crash(2, ms(10));
    let mut sim = build_vm(plan, Some(detector()));
    let tracer = sim.enable_tracing(1 << 20);
    let done = sim.run();

    // The crash fired, was detected within the heartbeat budget, and the
    // dead slice's pages were quarantined.
    let s = &sim.world.stats;
    assert_eq!(s.node_crashes, 1);
    assert_eq!(s.detections, 1);
    assert!(s.heartbeat_misses >= 3);
    assert!(
        s.detection_latency <= detector().worst_case_detection(),
        "detection took {}",
        s.detection_latency
    );
    assert!(s.pages_quarantined >= 256, "{}", s.pages_quarantined);
    assert_eq!(sim.world.mem.dsm.pages_owned_by(NodeId::new(2)), 0);
    assert_eq!(sim.world.crash_time(NodeId::new(2)), Some(ms(10)));

    // The guest resumed and finished: the victim vCPU re-ran its burst on
    // the restore node, so the makespan exceeds the fault-free 100 ms.
    assert!(done > ms(100), "makespan {done}");
    assert_eq!(sim.world.placement_of(VcpuId::new(2)).node, NodeId::new(0));
    for f in &sim.world.stats.vcpu_finish {
        assert!(f.is_some(), "every vCPU must finish after recovery");
    }

    // DSM invariants hold post-recovery and the trace audits clean.
    sim.world
        .mem
        .dsm
        .check_invariants()
        .expect("dsm invariants");
    let violations = sim_core::audit::audit_tracer(&tracer).expect("full trace");
    assert!(violations.is_empty(), "audit violations: {violations:?}");

    // Detection and recovery are visible in the trace, in causal order.
    let events = tracer.snapshot();
    let crash_at = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::NodeCrash { at, node: 2 } => Some(*at),
            _ => None,
        })
        .expect("NodeCrash traced");
    let dead_at = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::NodeDeclaredDead { at, node: 2, .. } => Some(*at),
            _ => None,
        })
        .expect("NodeDeclaredDead traced");
    let restore_at = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::NodeRestore { at, node: 2, .. } => Some(*at),
            _ => None,
        })
        .expect("NodeRestore traced");
    assert!(crash_at < dead_at && dead_at <= restore_at);
    let quarantines = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::PageQuarantine { dead: 2, .. }))
        .count();
    assert!(quarantines >= 256, "{quarantines}");
}

#[test]
fn detector_stays_quiet_without_crashes() {
    // Loss-free plan, no crashes: the detector must not declare anyone
    // dead (the audit's detector-false-dead rule enforces the same).
    let plan = FaultPlan::scripted(7);
    let mut sim = build_vm(plan, Some(detector()));
    let tracer = sim.enable_tracing(1 << 20);
    let done = sim.run();
    assert_eq!(done, ms(100));
    assert_eq!(sim.world.stats.detections, 0);
    assert_eq!(sim.world.stats.heartbeat_misses, 0);
    let violations = sim_core::audit::audit_tracer(&tracer).expect("full trace");
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn predicted_failure_drains_instead_of_restoring() {
    let plan = FaultPlan::scripted(7).crash(2, ms(10));
    let mut cfg = detector();
    cfg.prediction_lead = Some(ms(5));
    let mut sim = build_vm(plan, Some(cfg));
    let tracer = sim.enable_tracing(1 << 20);
    let done = sim.run();

    // The drain beat the crash: master copies moved ahead of time, so
    // recovery had nothing to quarantine.
    let s = &sim.world.stats;
    assert!(s.pages_drained >= 256, "{}", s.pages_drained);
    assert_eq!(s.pages_quarantined, 0);
    assert!(s.migrations >= 1);
    assert_eq!(sim.world.placement_of(VcpuId::new(2)).node, NodeId::new(0));
    assert!(done > ms(100));
    sim.world
        .mem
        .dsm
        .check_invariants()
        .expect("dsm invariants");
    let violations = sim_core::audit::audit_tracer(&tracer).expect("full trace");
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn crash_mid_checkpoint_leaves_clean_audit() {
    // A checkpoint is in flight (trace events emitted at 5 ms) when the
    // node dies at 10 ms: recovery must still leave exactly one owner per
    // page and a violation-free trace.
    let plan = FaultPlan::scripted(11).crash(2, ms(10));
    let mut sim = build_vm(plan, Some(detector()));
    let tracer = sim.enable_tracing(1 << 20);
    sim.run_until(ms(5));
    let report = hypervisor::checkpoint::checkpoint(
        &sim.world.mem,
        NodeId::new(0),
        Bandwidth::mb_per_sec(500.0),
        sim.world.profile().link,
    );
    assert!(report.duration > SimTime::ZERO);
    let done = sim.run();
    assert!(done > ms(100));
    sim.world
        .mem
        .dsm
        .check_invariants()
        .expect("dsm invariants");
    let violations = sim_core::audit::audit_tracer(&tracer).expect("full trace");
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn force_drain_reports_refusals() {
    let plan = FaultPlan::scripted(3);
    let mut sim = build_vm(plan, None);
    sim.run_until(ms(5));
    let first = force_drain(&mut sim, NodeId::new(2), NodeId::new(0)).expect("mobile");
    assert_eq!(first.vcpus_moved, 1);
    assert_eq!(first.vcpus_refused, 0);
    // The vCPU is still mid-migration: a second drain must refuse it and
    // say so rather than pretending the node is clear.
    let second = force_drain(&mut sim, NodeId::new(2), NodeId::new(0)).expect("mobile");
    assert_eq!(second.vcpus_moved, 0);
    assert_eq!(second.vcpus_refused, 1);
    assert_eq!(sim.world.stats.migrations_refused, 1);
    let done = sim.run();
    assert!(done >= ms(100));
}

/// Runs the full seeded scenario and returns the trace as JSONL bytes.
fn run_seeded(seed: u64) -> (String, SimTime) {
    let plan = FaultPlan::seeded(seed, 4, ms(100));
    let mut sim = build_vm(plan, Some(detector()));
    let tracer = sim.enable_tracing(1 << 20);
    let done = sim.run();
    (tracer.to_jsonl(), done)
}

#[test]
fn seeded_scenario_replays_bit_for_bit() {
    let (a, done_a) = run_seeded(0xFA11);
    let (b, done_b) = run_seeded(0xFA11);
    assert_eq!(done_a, done_b);
    assert_eq!(a, b, "same seed must give byte-identical traces");
    assert!(!a.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seeded fault plan replays byte-for-byte and audits clean.
    #[test]
    fn seeded_plans_replay_and_audit_clean(seed in 0u64..1_000_000) {
        let plan = FaultPlan::seeded(seed, 4, ms(100));
        let run = |plan: FaultPlan| {
            let mut sim = build_vm(plan, Some(detector()));
            let tracer = sim.enable_tracing(1 << 20);
            let done = sim.run();
            let violations = sim_core::audit::audit_tracer(&tracer).expect("full trace");
            (tracer.to_jsonl(), done, violations)
        };
        let (trace_a, done_a, violations) = run(plan.clone());
        let (trace_b, done_b, _) = run(plan);
        prop_assert_eq!(done_a, done_b);
        prop_assert_eq!(trace_a, trace_b);
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
    }
}

#[test]
fn netsend_without_device_degrades_instead_of_panicking() {
    use hypervisor::program::{Op, Scripted};
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 1);
    b = b.vcpu(
        Placement::new(0, 0),
        Box::new(Scripted::new([
            Op::NetSend {
                conn: 1,
                bytes: ByteSize::bytes(512),
                payload: vec![],
            },
            Op::BlkIo {
                bytes: ByteSize::bytes(4096),
                write: true,
                tmpfs: false,
                buffer: vec![],
            },
            Op::Compute(ms(1)),
        ])),
    );
    let mut sim = b.build();
    let done = sim.run();
    assert_eq!(done, ms(1));
    let errs = sim.world.errors();
    assert_eq!(errs.len(), 2, "{errs:?}");
    assert!(matches!(errs[0], hypervisor::VmError::NoNetDevice { .. }));
    assert!(matches!(errs[1], hypervisor::VmError::NoBlkDevice { .. }));
}
