//! End-to-end fault injection: scripted crashes, heartbeat detection,
//! quarantine + checkpoint restore, and deterministic replay.

use comm::NodeId;
use dsm::PageClass;
use hypervisor::failure::FailureConfig;
use hypervisor::program::FixedCompute;
use hypervisor::reliability::force_drain;
use hypervisor::vm::{Placement, VmBuilder, VmSim};
use hypervisor::{HypervisorProfile, VcpuId};
use proptest::prelude::*;
use sim_core::fault::FaultPlan;
use sim_core::time::SimTime;
use sim_core::trace::TraceEvent;
use sim_core::units::{Bandwidth, ByteSize};

fn ms(n: u64) -> SimTime {
    SimTime::from_millis(n)
}

/// A 4-node FragVisor VM with one 100 ms vCPU per node and a dataset
/// homed on node 2 (the crash victim in most scenarios).
fn build_vm(plan: FaultPlan, detector: Option<FailureConfig>) -> VmSim {
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 4).with_fault_plan(plan);
    if let Some(cfg) = detector {
        b = b.with_failure_detector(cfg);
    }
    for i in 0..4 {
        b = b.vcpu(Placement::new(i, 0), Box::new(FixedCompute::new(ms(100))));
    }
    let mut sim = b.build();
    let _ = sim
        .world
        .mem
        .alloc_app_region("data", 256, NodeId::new(2), PageClass::Private);
    sim
}

fn detector() -> FailureConfig {
    FailureConfig {
        monitor: NodeId::new(0),
        heartbeat_interval: ms(1),
        miss_threshold: 3,
        restore_to: NodeId::new(0),
        restore_disk: Bandwidth::mb_per_sec(500.0),
        checkpoint_interval: ms(50),
        prediction_lead: None,
    }
}

#[test]
fn crash_is_detected_quarantined_and_restored() {
    let plan = FaultPlan::scripted(7).crash(2, ms(10));
    let mut sim = build_vm(plan, Some(detector()));
    let tracer = sim.enable_tracing(1 << 20);
    let done = sim.run();

    // The crash fired, was detected within the heartbeat budget, and the
    // dead slice's pages were quarantined.
    let s = &sim.world.stats;
    assert_eq!(s.node_crashes, 1);
    assert_eq!(s.detections, 1);
    assert!(s.heartbeat_misses >= 3);
    assert!(
        s.detection_latency <= detector().worst_case_detection(),
        "detection took {}",
        s.detection_latency
    );
    assert!(s.pages_quarantined >= 256, "{}", s.pages_quarantined);
    assert_eq!(sim.world.mem.dsm.pages_owned_by(NodeId::new(2)), 0);
    assert_eq!(sim.world.crash_time(NodeId::new(2)), Some(ms(10)));

    // The guest resumed and finished: the victim vCPU re-ran its burst on
    // the restore node, so the makespan exceeds the fault-free 100 ms.
    assert!(done > ms(100), "makespan {done}");
    assert_eq!(sim.world.placement_of(VcpuId::new(2)).node, NodeId::new(0));
    for f in &sim.world.stats.vcpu_finish {
        assert!(f.is_some(), "every vCPU must finish after recovery");
    }

    // DSM invariants hold post-recovery and the trace audits clean.
    sim.world
        .mem
        .dsm
        .check_invariants()
        .expect("dsm invariants");
    let violations = sim_core::audit::audit_tracer(&tracer).expect("full trace");
    assert!(violations.is_empty(), "audit violations: {violations:?}");

    // Detection and recovery are visible in the trace, in causal order.
    let events = tracer.snapshot();
    let crash_at = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::NodeCrash { at, node: 2 } => Some(*at),
            _ => None,
        })
        .expect("NodeCrash traced");
    let dead_at = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::NodeDeclaredDead { at, node: 2, .. } => Some(*at),
            _ => None,
        })
        .expect("NodeDeclaredDead traced");
    let restore_at = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::NodeRestore { at, node: 2, .. } => Some(*at),
            _ => None,
        })
        .expect("NodeRestore traced");
    assert!(crash_at < dead_at && dead_at <= restore_at);
    let quarantines = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::PageQuarantine { dead: 2, .. }))
        .count();
    assert!(quarantines >= 256, "{quarantines}");
}

#[test]
fn detector_stays_quiet_without_crashes() {
    // Loss-free plan, no crashes: the detector must not declare anyone
    // dead (the audit's detector-false-dead rule enforces the same).
    let plan = FaultPlan::scripted(7);
    let mut sim = build_vm(plan, Some(detector()));
    let tracer = sim.enable_tracing(1 << 20);
    let done = sim.run();
    assert_eq!(done, ms(100));
    assert_eq!(sim.world.stats.detections, 0);
    assert_eq!(sim.world.stats.heartbeat_misses, 0);
    let violations = sim_core::audit::audit_tracer(&tracer).expect("full trace");
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn predicted_failure_drains_instead_of_restoring() {
    let plan = FaultPlan::scripted(7).crash(2, ms(10));
    let mut cfg = detector();
    cfg.prediction_lead = Some(ms(5));
    let mut sim = build_vm(plan, Some(cfg));
    let tracer = sim.enable_tracing(1 << 20);
    let done = sim.run();

    // The drain beat the crash: master copies moved ahead of time, so
    // recovery had nothing to quarantine.
    let s = &sim.world.stats;
    assert!(s.pages_drained >= 256, "{}", s.pages_drained);
    assert_eq!(s.pages_quarantined, 0);
    assert!(s.migrations >= 1);
    assert_eq!(sim.world.placement_of(VcpuId::new(2)).node, NodeId::new(0));
    assert!(done > ms(100));
    sim.world
        .mem
        .dsm
        .check_invariants()
        .expect("dsm invariants");
    let violations = sim_core::audit::audit_tracer(&tracer).expect("full trace");
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn crash_mid_checkpoint_leaves_clean_audit() {
    // A checkpoint is in flight (trace events emitted at 5 ms) when the
    // node dies at 10 ms: recovery must still leave exactly one owner per
    // page and a violation-free trace.
    let plan = FaultPlan::scripted(11).crash(2, ms(10));
    let mut sim = build_vm(plan, Some(detector()));
    let tracer = sim.enable_tracing(1 << 20);
    sim.run_until(ms(5));
    let report = hypervisor::checkpoint::checkpoint(
        &sim.world.mem,
        NodeId::new(0),
        Bandwidth::mb_per_sec(500.0),
        sim.world.profile().link,
    );
    assert!(report.duration > SimTime::ZERO);
    let done = sim.run();
    assert!(done > ms(100));
    sim.world
        .mem
        .dsm
        .check_invariants()
        .expect("dsm invariants");
    let violations = sim_core::audit::audit_tracer(&tracer).expect("full trace");
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn force_drain_reports_refusals() {
    let plan = FaultPlan::scripted(3);
    let mut sim = build_vm(plan, None);
    sim.run_until(ms(5));
    let first = force_drain(&mut sim, NodeId::new(2), NodeId::new(0)).expect("mobile");
    assert_eq!(first.vcpus_moved, 1);
    assert_eq!(first.vcpus_refused, 0);
    // The vCPU is still mid-migration: a second drain must refuse it and
    // say so rather than pretending the node is clear.
    let second = force_drain(&mut sim, NodeId::new(2), NodeId::new(0)).expect("mobile");
    assert_eq!(second.vcpus_moved, 0);
    assert_eq!(second.vcpus_refused, 1);
    assert_eq!(sim.world.stats.migrations_refused, 1);
    let done = sim.run();
    assert!(done >= ms(100));
}

/// Runs the full seeded scenario and returns the trace as JSONL bytes.
fn run_seeded(seed: u64) -> (String, SimTime) {
    let plan = FaultPlan::seeded(seed, 4, ms(100));
    let mut sim = build_vm(plan, Some(detector()));
    let tracer = sim.enable_tracing(1 << 20);
    let done = sim.run();
    (tracer.to_jsonl(), done)
}

#[test]
fn seeded_scenario_replays_bit_for_bit() {
    let (a, done_a) = run_seeded(0xFA11);
    let (b, done_b) = run_seeded(0xFA11);
    assert_eq!(done_a, done_b);
    assert_eq!(a, b, "same seed must give byte-identical traces");
    assert!(!a.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seeded fault plan replays byte-for-byte and audits clean.
    #[test]
    fn seeded_plans_replay_and_audit_clean(seed in 0u64..1_000_000) {
        let plan = FaultPlan::seeded(seed, 4, ms(100));
        let run = |plan: FaultPlan| {
            let mut sim = build_vm(plan, Some(detector()));
            let tracer = sim.enable_tracing(1 << 20);
            let done = sim.run();
            let violations = sim_core::audit::audit_tracer(&tracer).expect("full trace");
            (tracer.to_jsonl(), done, violations)
        };
        let (trace_a, done_a, violations) = run(plan.clone());
        let (trace_b, done_b, _) = run(plan);
        prop_assert_eq!(done_a, done_b);
        prop_assert_eq!(trace_a, trace_b);
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
    }
}

/// A 4-node VM whose vCPUs all hammer the same shared page window, so a
/// cut-off minority that kept writing unfenced would corrupt survivors.
fn partition_vm(plan: FaultPlan, cfg: FailureConfig) -> VmSim {
    use dsm::{Access, PageId};
    use hypervisor::program::{Op, Scripted};
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 4)
        .with_fault_plan(plan)
        .with_failure_detector(cfg);
    for i in 0..4 {
        let mut ops = Vec::new();
        for round in 0..30u32 {
            ops.push(Op::Compute(ms(2)));
            ops.push(Op::Touch {
                page: PageId::new(100 + (round % 8)),
                access: Access::Write,
            });
        }
        b = b.vcpu(Placement::new(i, 0), Box::new(Scripted::new(ops)));
    }
    b.build()
}

#[test]
fn partitioned_minority_is_fenced_heals_and_rejoins() {
    // Node 2 is cut off from 10 ms to 45 ms. The detector declares it
    // dead (~14 ms), fencing it at a new epoch; its writes from then on
    // are rejected, not applied. At the heal it rejoins, re-fetches, and
    // finishes its program.
    let plan = FaultPlan::scripted(21).partition(vec![2], ms(10), ms(45));
    let mut sim = partition_vm(plan, detector());
    let tracer = sim.enable_tracing(1 << 20);
    let done = sim.run();

    let s = &sim.world.stats;
    assert_eq!(s.partitions, 1);
    assert_eq!(s.node_crashes, 0, "a partition is not a crash");
    assert!(s.detections >= 1);
    assert_eq!(s.epoch_bumps, 1);
    assert_eq!(s.rejoins, 1);
    for f in &s.vcpu_finish {
        assert!(f.is_some(), "every vCPU finishes after the heal");
    }
    assert!(done > ms(60), "makespan {done}");

    let events = tracer.snapshot();
    let rejected = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::StaleEpochRejected { node: 2, .. }))
        .count();
    assert!(rejected > 0, "the minority kept writing after the fence");
    assert!(events.iter().any(|e| matches!(
        e,
        TraceEvent::EpochBump {
            epoch: 1,
            dead: 2,
            ..
        }
    )));
    assert!(events.iter().any(|e| matches!(
        e,
        TraceEvent::NodeRejoin {
            node: 2,
            epoch: 1,
            ..
        }
    )));
    // Fence before the first rejection, rejection before the rejoin.
    let bump_at = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::EpochBump { at, .. } => Some(*at),
            _ => None,
        })
        .expect("EpochBump traced");
    let first_reject = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::StaleEpochRejected { at, .. } => Some(*at),
            _ => None,
        })
        .expect("StaleEpochRejected traced");
    let rejoin_at = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::NodeRejoin { at, .. } => Some(*at),
            _ => None,
        })
        .expect("NodeRejoin traced");
    assert!(bump_at <= first_reject && first_reject < rejoin_at);

    // Zero rejected writes were applied: the audit's epoch rules and the
    // single-owner invariant both come up clean.
    sim.world
        .mem
        .dsm
        .check_invariants()
        .expect("dsm invariants");
    let violations = sim_core::audit::audit_tracer(&tracer).expect("full trace");
    assert!(violations.is_empty(), "audit violations: {violations:?}");
}

#[test]
fn partition_scenario_replays_bit_for_bit() {
    let run = || {
        let plan = FaultPlan::scripted(21).partition(vec![2], ms(10), ms(45));
        let mut sim = partition_vm(plan, detector());
        let tracer = sim.enable_tracing(1 << 20);
        let done = sim.run();
        (tracer.to_jsonl(), done)
    };
    let (a, done_a) = run();
    let (b, done_b) = run();
    assert_eq!(done_a, done_b);
    assert_eq!(a, b, "same plan must give byte-identical traces");
    assert!(!a.is_empty());
}

#[test]
fn restore_target_crash_mid_restore_falls_back_to_spare() {
    // Monitor on node 3. Node 2 dies at 10 ms and restores to node 0 —
    // which dies at 14 ms, mid-restore. Recovery must fall back to the
    // next live node (1) and still finish every vCPU.
    let plan = FaultPlan::scripted(9).crash(2, ms(10)).crash(0, ms(14));
    let mut cfg = detector();
    cfg.monitor = NodeId::new(3);
    let mut sim = partition_vm(plan, cfg);
    let tracer = sim.enable_tracing(1 << 20);
    let done = sim.run();

    let s = &sim.world.stats;
    assert_eq!(s.node_crashes, 2);
    assert_eq!(s.detections, 2);
    assert!(s.restore_fallbacks >= 1, "node 0's recovery must fall back");
    for f in &s.vcpu_finish {
        assert!(f.is_some(), "every vCPU finishes on the fallback node");
    }
    assert_eq!(sim.world.placement_of(VcpuId::new(2)).node, NodeId::new(1));
    assert_eq!(sim.world.placement_of(VcpuId::new(0)).node, NodeId::new(1));
    assert!(done > ms(60), "makespan {done}");
    sim.world
        .mem
        .dsm
        .check_invariants()
        .expect("dsm invariants");
    let violations = sim_core::audit::audit_tracer(&tracer).expect("full trace");
    assert!(violations.is_empty(), "audit violations: {violations:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any chaotic plan (crashes × partitions × loss, monitor spared)
    /// replays byte-for-byte and audits clean.
    #[test]
    fn chaotic_plans_replay_and_audit_clean(seed in 0u64..1_000_000) {
        let plan = FaultPlan::chaotic(seed, 4, ms(100), 0);
        let run = |plan: FaultPlan| {
            let mut sim = partition_vm(plan, detector());
            let tracer = sim.enable_tracing(1 << 20);
            let done = sim.run();
            let violations = sim_core::audit::audit_tracer(&tracer).expect("full trace");
            (tracer.to_jsonl(), done, violations)
        };
        let (trace_a, done_a, violations) = run(plan.clone());
        let (trace_b, done_b, _) = run(plan);
        prop_assert_eq!(done_a, done_b);
        prop_assert_eq!(trace_a, trace_b);
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
    }
}

#[test]
fn netsend_without_device_degrades_instead_of_panicking() {
    use hypervisor::program::{Op, Scripted};
    let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 1);
    b = b.vcpu(
        Placement::new(0, 0),
        Box::new(Scripted::new([
            Op::NetSend {
                conn: 1,
                bytes: ByteSize::bytes(512),
                payload: vec![],
            },
            Op::BlkIo {
                bytes: ByteSize::bytes(4096),
                write: true,
                tmpfs: false,
                buffer: vec![],
            },
            Op::Compute(ms(1)),
        ])),
    );
    let mut sim = b.build();
    let done = sim.run();
    assert_eq!(done, ms(1));
    let errs = sim.world.errors();
    assert_eq!(errs.len(), 2, "{errs:?}");
    assert!(matches!(errs[0], hypervisor::VmError::NoNetDevice { .. }));
    assert!(matches!(errs[1], hypervisor::VmError::NoBlkDevice { .. }));
}
