//! Canonical experiment scenarios.
//!
//! Every figure harness, integration test and example builds its VMs
//! through these functions, so the exact deployment of each paper
//! experiment (pinnings, device homes, client links, request counts) is
//! defined once.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use comm::{LinkProfile, NodeId};
use dsm::PageId;
use hypervisor::{ClientConfig, HypervisorProfile, Placement, VcpuId, VmBuilder, VmSim};
use sim_core::time::SimTime;
use sim_core::units::ByteSize;
use workloads::faas::FaasPhases;
use workloads::{
    AbClient, BlkStreamer, ConcurrentWriter, DbWorker, FaasWorker, LempConfig, NginxDispatcher,
    NpbClass, NpbKernel, NpbOmp, NpbSerial, PhpDbWorker, PhpWorker, SharingLoop, SharingMode,
    StaticServer,
};

use crate::aggregate::Distribution;

/// Base page for microbenchmark arrays (far above any allocated region).
const MICRO_BASE: u32 = 2_000_000;

/// Figures 8/9/10: one serial NPB instance per vCPU.
pub fn npb_multiprocess(
    kernel: NpbKernel,
    class: NpbClass,
    vcpus: usize,
    profile: HypervisorProfile,
    dist: &Distribution,
) -> VmSim {
    let placements = dist.placements(vcpus);
    let nodes = dist.nodes_needed(vcpus).max(1);
    let mut b = VmBuilder::new(profile, nodes)
        .ram(ByteSize::gib(8))
        // The guest runs with CONFIG_HZ=250 (the v4.4 default).
        .with_timer(SimTime::from_millis(4));
    for (i, p) in placements.into_iter().enumerate() {
        b = b.vcpu(p, Box::new(NpbSerial::new(kernel, class, i)));
    }
    b.build()
}

/// Figure 1 (OMP side): one shared-memory NPB instance with a given
/// write-sharing degree per compute chunk.
pub fn npb_omp(
    write_share: f64,
    vcpus: usize,
    total: SimTime,
    profile: HypervisorProfile,
    dist: &Distribution,
) -> VmSim {
    let placements = dist.placements(vcpus);
    let nodes = dist.nodes_needed(vcpus).max(1);
    let shared = guest::memory::Region {
        first: PageId::new(MICRO_BASE),
        pages: 128,
    };
    let mut b = VmBuilder::new(profile, nodes).ram(ByteSize::gib(4));
    for (i, p) in placements.into_iter().enumerate() {
        b = b.vcpu(
            p,
            Box::new(NpbOmp::new(
                shared,
                write_share,
                total,
                SimTime::from_micros(5),
                i,
                vcpus,
            )),
        );
    }
    b.build()
}

/// Figure 4: the sharing-level loop, `iters` read+write iterations per
/// vCPU against the pattern's page assignment. The shared page and the
/// no-sharing stream ranges are homed so that every iteration pays a
/// remote fault; the sharing cases additionally contend.
pub fn sharing_loop(
    mode: SharingMode,
    vcpus: usize,
    iters: u64,
    profile: HypervisorProfile,
) -> VmSim {
    let base = PageId::new(MICRO_BASE);
    let mut b = VmBuilder::new(profile, vcpus).ram(ByteSize::gib(2));
    for v in 0..vcpus {
        b = b.vcpu(
            Placement::new(v as u32, 0),
            Box::new(SharingLoop::new(
                mode,
                base,
                v,
                vcpus,
                iters,
                SimTime::from_nanos(50),
            )),
        );
    }
    let mut sim = b.build();
    // Home every touched page on the *next* node so even the no-sharing
    // stream performs one cold remote fetch per iteration (the paper's
    // normalization baseline).
    for v in 0..vcpus {
        let home = NodeId::from_usize((v + 1) % vcpus);
        let pages: Vec<PageId> = (0..iters)
            .map(|i| mode.page_for(base, v, vcpus, i))
            .collect();
        sim.world
            .mem
            .register_pages(&pages, home, dsm::PageClass::AppShared);
    }
    sim
}

/// Figure 5: concurrent writers until `deadline`; `page_groups[i]` is the
/// page index vCPU `i` writes (same index = same page). Returns the sim
/// and each writer's completed-write counter.
pub fn concurrent_writes(
    page_groups: &[u32],
    deadline: SimTime,
    profile: HypervisorProfile,
    dist: &Distribution,
) -> (VmSim, Vec<Rc<Cell<u64>>>) {
    let vcpus = page_groups.len();
    let placements = dist.placements(vcpus);
    let nodes = dist.nodes_needed(vcpus).max(1);
    let mut b = VmBuilder::new(profile, nodes).ram(ByteSize::gib(2));
    let mut counters = Vec::new();
    // Writes coalesce into batches (fewer engine events, same write
    // schedule) whenever the page sees no cross-node write sharing: either
    // the whole VM sits on one node, or the vCPU's page group is private.
    let single_node = placements.iter().all(|p| p.node == placements[0].node);
    for (i, p) in placements.into_iter().enumerate() {
        let page = PageId::new(MICRO_BASE + page_groups[i]);
        let private = page_groups.iter().filter(|&&g| g == page_groups[i]).count() == 1;
        let batch = if single_node || private { 64 } else { 1 };
        let (prog, counter) =
            ConcurrentWriter::batched(page, deadline, SimTime::from_nanos(100), batch);
        counters.push(counter);
        b = b.vcpu(p, Box::new(prog));
    }
    (b.build(), counters)
}

/// Figure 6: NGINX static server on `server_node` with the NIC on node 0;
/// `requests` ApacheBench requests of `response`-sized pages over 1 GbE.
pub fn net_delegation(
    server_node: u32,
    response: ByteSize,
    requests: u64,
    profile: HypervisorProfile,
) -> VmSim {
    net_delegation_with(server_node, response, requests, 10, false, profile)
}

/// [`net_delegation`] with explicit client concurrency and content mode.
pub fn net_delegation_with(
    server_node: u32,
    response: ByteSize,
    requests: u64,
    concurrency: u64,
    dynamic: bool,
    profile: HypervisorProfile,
) -> VmSim {
    let nodes = (server_node as usize + 1).max(2);
    let mut b = VmBuilder::new(profile, nodes).with_net(NodeId::new(0));
    let server = if dynamic {
        StaticServer::dynamic(response)
    } else {
        StaticServer::new(response)
    };
    b = b.vcpu(Placement::new(server_node, 0), Box::new(server));
    b = b.with_client(ClientConfig {
        node: NodeId::new(0),
        link: LinkProfile::ethernet_1g(),
        model: Box::new(AbClient::new(
            requests,
            concurrency,
            ByteSize::bytes(200),
            vec![VcpuId::new(0)],
        )),
    });
    b.build()
}

/// Figure 6 ablation: like [`net_delegation`] but with per-request
/// regenerated (dynamic) content, so the DSM data path is exercised on
/// every response rather than only on first touch.
pub fn net_delegation_dynamic(
    server_node: u32,
    response: ByteSize,
    requests: u64,
    profile: HypervisorProfile,
) -> VmSim {
    net_delegation_with(server_node, response, requests, 10, true, profile)
}

/// Figure 7: single-threaded sequential storage through virtio-blk, the
/// disk homed on node 0 and the vCPU on `vcpu_node`.
pub fn storage_delegation(
    vcpu_node: u32,
    total: ByteSize,
    write: bool,
    tmpfs: bool,
    profile: HypervisorProfile,
) -> VmSim {
    let nodes = (vcpu_node as usize + 1).max(2);
    let mut b = VmBuilder::new(profile, nodes).with_blk(NodeId::new(0));
    b = b.vcpu(
        Placement::new(vcpu_node, 0),
        Box::new(BlkStreamer::new(total, ByteSize::mib(1), write, tmpfs)),
    );
    b.build()
}

/// Memory borrowing (§4: "a VM slice can be composed of just memory"):
/// a single-vCPU VM on node 0 whose dataset is partially homed on a
/// memory-only slice on node 1. The program sweeps the dataset; the
/// borrowed fraction is fetched through the DSM on first touch.
pub fn memory_borrowing(
    dataset_pages: u64,
    borrowed_fraction: f64,
    sweeps: u64,
    profile: HypervisorProfile,
) -> VmSim {
    use dsm::Access;
    use hypervisor::Op;

    /// Sequentially reads the dataset `sweeps` times with light compute.
    #[derive(Debug)]
    struct Sweeper {
        first: PageId,
        pages: u64,
        left: u64,
        cursor: u64,
        charge: u64,
    }
    impl hypervisor::Program for Sweeper {
        fn next(&mut self, _cx: &mut hypervisor::ProgCtx<'_>) -> Op {
            if self.charge > 0 {
                // ~200ns of compute per page swept in the last batch.
                let work = SimTime::from_nanos(200 * self.charge);
                self.charge = 0;
                return Op::Compute(work);
            }
            if self.left == 0 {
                return Op::Done;
            }
            let batch = 64.min(self.pages - self.cursor);
            let touches: Vec<(PageId, Access)> = (0..batch)
                .map(|i| {
                    (
                        PageId::from_usize(self.first.index() + (self.cursor + i) as usize),
                        Access::Read,
                    )
                })
                .collect();
            self.cursor += batch;
            self.charge = batch;
            if self.cursor >= self.pages {
                self.cursor = 0;
                self.left -= 1;
            }
            Op::TouchBatch(touches)
        }
        fn label(&self) -> &str {
            "mem-sweeper"
        }
    }

    let first = PageId::new(MICRO_BASE);
    let mut b = VmBuilder::new(profile, 2).ram(ByteSize::gib(8));
    b = b.vcpu(
        Placement::new(0, 0),
        Box::new(Sweeper {
            first,
            pages: dataset_pages,
            left: sweeps,
            cursor: 0,
            charge: 0,
        }),
    );
    let mut sim = b.build();
    let local_pages = ((1.0 - borrowed_fraction) * dataset_pages as f64) as u64;
    let local: Vec<PageId> = (0..local_pages)
        .map(|i| PageId::from_usize(first.index() + i as usize))
        .collect();
    let borrowed: Vec<PageId> = (local_pages..dataset_pages)
        .map(|i| PageId::from_usize(first.index() + i as usize))
        .collect();
    sim.world
        .mem
        .register_pages(&local, NodeId::new(0), dsm::PageClass::Private);
    sim.world
        .mem
        .register_pages(&borrowed, NodeId::new(1), dsm::PageClass::Private);
    sim
}

/// Figure 12: the LEMP stack — NGINX on vCPU0, PHP workers on the rest,
/// an ApacheBench client over 1 GbE issuing `requests` requests.
pub fn lemp(
    config: LempConfig,
    profile: HypervisorProfile,
    dist: &Distribution,
    requests: u64,
) -> VmSim {
    let placements = dist.placements(config.vcpus);
    let nodes = dist.nodes_needed(config.vcpus).max(1);
    let mut b = VmBuilder::new(profile, nodes).with_net(NodeId::new(0));
    b = b.vcpu(placements[0], Box::new(NginxDispatcher::new(config)));
    for (i, &p) in placements.iter().enumerate().skip(1) {
        b = b.vcpu(p, Box::new(PhpWorker::new(config, i)));
    }
    b = b.with_client(ClientConfig {
        node: NodeId::new(0),
        link: LinkProfile::ethernet_1g(),
        model: Box::new(AbClient::new(
            requests,
            10,
            ByteSize::bytes(300),
            vec![VcpuId::new(0)],
        )),
    });
    b.build()
}

/// The full LEMP stack including the MySQL tier: NGINX on vCPU0, PHP
/// workers in the middle, the database on the last vCPU. `vcpus` counts
/// everything (so `vcpus - 2` PHP workers serve requests).
pub fn lemp_full_stack(
    processing_ms: u64,
    vcpus: usize,
    profile: HypervisorProfile,
    dist: &Distribution,
    requests: u64,
) -> VmSim {
    assert!(vcpus >= 3, "full stack needs nginx + php + db");
    // The dispatcher round-robins over 1..dispatch.vcpus; the DB is extra.
    let dispatch = LempConfig::paper(processing_ms, vcpus - 1);
    let db = VcpuId::from_usize(vcpus - 1);
    let placements = dist.placements(vcpus);
    let nodes = dist.nodes_needed(vcpus).max(1);
    let mut b = VmBuilder::new(profile, nodes).with_net(NodeId::new(0));
    b = b.vcpu(placements[0], Box::new(NginxDispatcher::new(dispatch)));
    for (i, &p) in placements.iter().enumerate().take(vcpus - 1).skip(1) {
        b = b.vcpu(p, Box::new(PhpDbWorker::new(dispatch, i, db)));
    }
    b = b.vcpu(placements[vcpus - 1], Box::new(DbWorker::new()));
    b = b.with_client(ClientConfig {
        node: NodeId::new(0),
        link: LinkProfile::ethernet_1g(),
        model: Box::new(AbClient::new(
            requests,
            10,
            ByteSize::bytes(300),
            vec![VcpuId::new(0)],
        )),
    });
    b.build()
}

/// Figure 13: OpenLambda — one worker per vCPU, one invocation per worker
/// in flight, the picture database reachable over the cluster fabric.
pub fn faas(
    vcpus: usize,
    invocations_per_worker: u64,
    profile: HypervisorProfile,
    dist: &Distribution,
) -> (VmSim, Vec<Rc<RefCell<Vec<FaasPhases>>>>) {
    let placements = dist.placements(vcpus);
    let nodes = dist.nodes_needed(vcpus).max(1);
    let mut b = VmBuilder::new(profile, nodes).with_net(NodeId::new(0));
    let mut phases = Vec::new();
    let mut targets = Vec::new();
    let mut archive = ByteSize::mib(4);
    for (v, p) in placements.into_iter().enumerate() {
        let (worker, ph) = FaasWorker::new(v, invocations_per_worker);
        archive = worker.archive_size();
        phases.push(ph);
        targets.push(VcpuId::from_usize(v));
        b = b.vcpu(p, Box::new(worker));
    }
    b = b.with_client(ClientConfig {
        node: NodeId::new(0),
        link: LinkProfile::infiniband_56g(),
        model: Box::new(AbClient::new(
            vcpus as u64 * invocations_per_worker,
            vcpus as u64,
            archive,
            targets,
        )),
    });
    (b.build(), phases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn npb_scenario_runs_all_profiles() {
        for profile in [HypervisorProfile::fragvisor(), HypervisorProfile::giantvm()] {
            let mut sim = npb_multiprocess(
                NpbKernel::Ep,
                NpbClass::Sim,
                2,
                profile,
                &Distribution::OneVcpuPerNode,
            );
            assert!(sim.run() > SimTime::ZERO);
        }
    }

    #[test]
    fn concurrent_writes_group_semantics() {
        // Max sharing: all four on one page -> heavy faults, few writes.
        let deadline = SimTime::from_millis(2);
        let (mut max_sim, max_counts) = concurrent_writes(
            &[0, 0, 0, 0],
            deadline,
            HypervisorProfile::fragvisor(),
            &Distribution::OneVcpuPerNode,
        );
        let _ = max_sim.run();
        let (mut none_sim, none_counts) = concurrent_writes(
            &[0, 1, 2, 3],
            deadline,
            HypervisorProfile::fragvisor(),
            &Distribution::OneVcpuPerNode,
        );
        let _ = none_sim.run();
        let max_total: u64 = max_counts.iter().map(|c| c.get()).sum();
        let none_total: u64 = none_counts.iter().map(|c| c.get()).sum();
        assert!(
            none_total > max_total * 10,
            "no-sharing {none_total} vs max-sharing {max_total}"
        );
    }

    #[test]
    fn net_delegation_scenario() {
        let mut sim = net_delegation(1, ByteSize::kib(256), 10, HypervisorProfile::fragvisor());
        let t = sim.run_client();
        assert!(t > SimTime::ZERO);
        assert_eq!(sim.world.stats.completed_requests, 10);
    }

    #[test]
    fn storage_delegation_scenario() {
        let mut sim = storage_delegation(
            1,
            ByteSize::mib(8),
            true,
            false,
            HypervisorProfile::fragvisor(),
        );
        assert!(sim.run() > SimTime::from_millis(16));
    }

    #[test]
    fn lemp_and_faas_scenarios_complete() {
        let mut sim = lemp(
            LempConfig::paper(100, 2),
            HypervisorProfile::fragvisor(),
            &Distribution::OneVcpuPerNode,
            5,
        );
        sim.run_client();
        assert_eq!(sim.world.stats.completed_requests, 5);

        let (mut sim, phases) = faas(
            2,
            1,
            HypervisorProfile::fragvisor(),
            &Distribution::OneVcpuPerNode,
        );
        let _ = sim.run();
        assert_eq!(phases[0].borrow().len(), 1);
    }

    #[test]
    fn full_stack_lemp_scenario() {
        let mut sim = lemp_full_stack(
            50,
            4,
            HypervisorProfile::fragvisor(),
            &Distribution::OneVcpuPerNode,
            8,
        );
        sim.run_client();
        assert_eq!(sim.world.stats.completed_requests, 8);
    }

    #[test]
    fn omp_scenario_runs() {
        let mut sim = npb_omp(
            0.2,
            2,
            SimTime::from_millis(5),
            HypervisorProfile::fragvisor(),
            &Distribution::OneVcpuPerNode,
        );
        assert!(sim.run() >= SimTime::from_millis(5));
    }
}
