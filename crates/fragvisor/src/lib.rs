//! FragVisor: a resource-borrowing hypervisor providing **Aggregate VMs**.
//!
//! This is the core crate of the workspace — the public API of the paper's
//! contribution. An *Aggregate VM* temporarily aggregates fragmented
//! hardware resources (pCPUs, RAM, I/O devices) from several physical
//! machines into one VM, as an alternative to overcommitment and to
//! evictable transient VMs. The enabling mechanisms, re-exported from the
//! substrate crates, are:
//!
//! * a kernel-space page-granularity DSM giving all slices a coherent view
//!   of the guest pseudo-physical memory ([`dsm`]);
//! * distributed vCPUs with cross-node IPI forwarding and **live vCPU
//!   migration** (≈86 µs/vCPU) for consolidation and fault avoidance
//!   ([`hypervisor::vm`]);
//! * **delegated VirtIO devices** with multiqueue and DSM-bypass
//!   ([`virtio`]);
//! * guest-kernel optimizations and runtime NUMA topology updates
//!   ([`guest`]);
//! * distributed checkpoint/restart ([`hypervisor::checkpoint`]).
//!
//! # Quickstart
//!
//! ```
//! use fragvisor::{AggregateVm, Distribution};
//! use sim_core::time::SimTime;
//!
//! // Four vCPUs borrowed from four different machines.
//! let mut sim = AggregateVm::spec()
//!     .vcpus(4)
//!     .distribution(Distribution::OneVcpuPerNode)
//!     .compute_workload(SimTime::from_millis(10))
//!     .build();
//! let makespan = sim.run();
//! assert_eq!(makespan, SimTime::from_millis(10)); // Full parallelism.
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod deploy;
pub mod scenarios;

pub use aggregate::{AggregateVm, AggregateVmSpec, Distribution};
pub use hypervisor::checkpoint::{checkpoint, restore, CheckpointReport};
pub use hypervisor::{
    ClientConfig, ClientModel, ClientSend, HypervisorProfile, Op, Placement, ProgCtx, Program,
    VcpuId, VmBuilder, VmSim, VmStats, VmWorld,
};

/// The FragVisor hypervisor profile (kernel DSM, multiqueue + DSM-bypass,
/// NUMA updates, optimized guest, mobility).
pub fn profile() -> HypervisorProfile {
    HypervisorProfile::fragvisor()
}

/// FragVisor driving an unmodified (vanilla) guest kernel — the baseline
/// of the Figure 10 comparison.
pub fn profile_vanilla_guest() -> HypervisorProfile {
    HypervisorProfile::fragvisor_vanilla_guest()
}

/// The single-machine profile used for overcommitment baselines.
pub fn overcommit_profile() -> HypervisorProfile {
    HypervisorProfile::single_machine()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinct() {
        assert_eq!(profile().name, "fragvisor");
        assert_eq!(overcommit_profile().name, "single-machine");
        assert_eq!(profile_vanilla_guest().name, "fragvisor-vanilla-guest");
        assert!(profile().mobility);
    }
}
