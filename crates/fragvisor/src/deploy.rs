//! Bridging scheduler decisions onto running VMs.
//!
//! The scheduler (FragBFF) thinks in *per-node vCPU counts*; the
//! hypervisor thinks in *per-vCPU placements*. This module converts
//! between the two and computes minimal migration plans, so
//! scheduler-driven consolidation (Figure 14) is a reusable operation
//! rather than experiment-local glue.

use comm::NodeId;
use hypervisor::{Placement, VcpuId, VmSim};

/// Expands per-node vCPU counts into concrete placements
/// (vCPU k gets pCPU k on its node, mirroring the artifact's pinning).
///
/// # Examples
///
/// ```
/// use fragvisor::deploy::placements_from_counts;
/// let p = placements_from_counts(&[2, 0, 1, 0]);
/// assert_eq!(p.len(), 3);
/// assert_eq!(p[2].node.index(), 2);
/// ```
pub fn placements_from_counts(counts: &[u32]) -> Vec<Placement> {
    let mut out = Vec::new();
    for (node, &c) in counts.iter().enumerate() {
        for _ in 0..c {
            out.push(Placement {
                node: NodeId::from_usize(node),
                pcpu: out.len() as u32,
            });
        }
    }
    out
}

/// Computes the minimal set of vCPU moves taking `current` per-vCPU node
/// assignments to the target per-node `counts`.
///
/// vCPUs already on nodes that keep their population stay put; surplus
/// vCPUs move to deficit nodes in index order (deterministic).
///
/// # Panics
///
/// Panics if the target counts do not sum to the vCPU count.
pub fn migration_plan(current: &[NodeId], counts: &[u32]) -> Vec<(VcpuId, Placement)> {
    let total: u32 = counts.iter().sum();
    assert_eq!(
        total as usize,
        current.len(),
        "target counts must cover every vCPU"
    );
    let mut have = vec![0u32; counts.len()];
    for n in current {
        have[n.index()] += 1;
    }
    let mut moves = Vec::new();
    for (v, &node) in current.iter().enumerate() {
        let n = node.index();
        if have[n] > counts[n] {
            if let Some(dst) = (0..counts.len()).find(|&d| have[d] < counts[d]) {
                have[n] -= 1;
                have[dst] += 1;
                moves.push((
                    VcpuId::from_usize(v),
                    Placement {
                        node: NodeId::from_usize(dst),
                        pcpu: v as u32,
                    },
                ));
            }
        }
    }
    moves
}

/// Applies a target per-node count vector to a running VM by issuing the
/// minimal migrations; returns how many were issued.
pub fn apply_counts(sim: &mut VmSim, counts: &[u32]) -> u32 {
    let current: Vec<NodeId> = (0..sim.world.vcpu_count())
        .map(|v| sim.world.placement_of(VcpuId::from_usize(v)).node)
        .collect();
    let plan = migration_plan(&current, counts);
    let mut issued = 0;
    for (vcpu, to) in plan {
        if sim.migrate_vcpu(vcpu, to) {
            issued += 1;
        }
    }
    issued
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggregateVm, Distribution};
    use sim_core::time::SimTime;

    #[test]
    fn counts_expand_in_node_order() {
        let p = placements_from_counts(&[0, 2, 0, 2]);
        let nodes: Vec<usize> = p.iter().map(|p| p.node.index()).collect();
        assert_eq!(nodes, vec![1, 1, 3, 3]);
        // pCPUs are distinct.
        let pcpus: Vec<u32> = p.iter().map(|p| p.pcpu).collect();
        assert_eq!(pcpus, vec![0, 1, 2, 3]);
    }

    #[test]
    fn plan_moves_minimum() {
        let current = vec![NodeId::new(0), NodeId::new(0), NodeId::new(1)];
        // Consolidate everything onto node 1.
        let plan = migration_plan(&current, &[0, 3]);
        assert_eq!(plan.len(), 2);
        for (_, p) in &plan {
            assert_eq!(p.node, NodeId::new(1));
        }
        // Already-satisfied targets produce no moves.
        assert!(migration_plan(&current, &[2, 1]).is_empty());
    }

    #[test]
    #[should_panic(expected = "cover every vCPU")]
    fn plan_validates_totals() {
        let _ = migration_plan(&[NodeId::new(0)], &[2, 0]);
    }

    #[test]
    fn apply_counts_consolidates_running_vm() {
        let mut sim = AggregateVm::spec()
            .vcpus(4)
            .distribution(Distribution::OneVcpuPerNode)
            .compute_workload(SimTime::from_millis(50))
            .build();
        sim.run_until(SimTime::from_millis(5));
        let moved = apply_counts(&mut sim, &[4, 0, 0, 0]);
        assert_eq!(moved, 3);
        let _ = sim.run();
        for v in 0..4 {
            assert_eq!(
                sim.world.placement_of(VcpuId::from_usize(v)).node,
                NodeId::new(0)
            );
        }
    }
}
