//! High-level Aggregate VM construction and consolidation.

use comm::NodeId;
use hypervisor::program::FixedCompute;
use hypervisor::{HypervisorProfile, Placement, Program, VcpuId, VmBuilder, VmSim};
use sim_core::time::SimTime;
use sim_core::units::ByteSize;

/// How a VM's vCPUs map onto the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Distribution {
    /// One vCPU per node — the fully-fragmented Aggregate VM.
    OneVcpuPerNode,
    /// All vCPUs packed onto `pcpus` pCPUs of one node (overcommitment
    /// when `pcpus` is smaller than the vCPU count).
    Packed {
        /// Number of pCPUs to time-share.
        pcpus: u32,
    },
    /// Explicit placement per vCPU.
    Custom(Vec<Placement>),
}

impl Distribution {
    /// Expands the distribution into per-vCPU placements.
    pub fn placements(&self, vcpus: usize) -> Vec<Placement> {
        match self {
            Distribution::OneVcpuPerNode => {
                (0..vcpus).map(|i| Placement::new(i as u32, 0)).collect()
            }
            Distribution::Packed { pcpus } => {
                let pcpus = (*pcpus).max(1);
                (0..vcpus)
                    .map(|i| Placement::new(0, i as u32 % pcpus))
                    .collect()
            }
            Distribution::Custom(p) => {
                assert_eq!(p.len(), vcpus, "custom placement count mismatch");
                p.clone()
            }
        }
    }

    /// Number of cluster nodes the distribution needs.
    pub fn nodes_needed(&self, vcpus: usize) -> usize {
        self.placements(vcpus)
            .iter()
            .map(|p| p.node.index() + 1)
            .max()
            .unwrap_or(1)
    }
}

/// Marker type exposing the [`AggregateVm::spec`] entry point.
pub struct AggregateVm;

impl AggregateVm {
    /// Starts building an Aggregate VM specification.
    pub fn spec() -> AggregateVmSpec {
        AggregateVmSpec::default()
    }
}

/// Builder for an Aggregate VM simulation.
pub struct AggregateVmSpec {
    profile: HypervisorProfile,
    vcpus: usize,
    ram: ByteSize,
    distribution: Distribution,
    programs: Vec<Box<dyn Program>>,
    net_home: Option<NodeId>,
    blk_home: Option<NodeId>,
    seed: u64,
}

impl Default for AggregateVmSpec {
    fn default() -> Self {
        AggregateVmSpec {
            profile: HypervisorProfile::fragvisor(),
            vcpus: 2,
            ram: ByteSize::gib(4),
            distribution: Distribution::OneVcpuPerNode,
            programs: Vec::new(),
            net_home: None,
            blk_home: None,
            seed: 42,
        }
    }
}

impl AggregateVmSpec {
    /// Sets the hypervisor profile (defaults to FragVisor).
    pub fn profile(mut self, profile: HypervisorProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the vCPU count.
    pub fn vcpus(mut self, vcpus: usize) -> Self {
        self.vcpus = vcpus;
        self
    }

    /// Sets guest RAM.
    pub fn ram(mut self, ram: ByteSize) -> Self {
        self.ram = ram;
        self
    }

    /// Sets the vCPU-to-node distribution.
    pub fn distribution(mut self, d: Distribution) -> Self {
        self.distribution = d;
        self
    }

    /// Sets the determinism seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs one program per vCPU (must be called once per vCPU, in order),
    /// or use [`AggregateVmSpec::compute_workload`] for a uniform load.
    pub fn program(mut self, program: Box<dyn Program>) -> Self {
        self.programs.push(program);
        self
    }

    /// Gives every vCPU a fixed compute burst (quickstart helper).
    pub fn compute_workload(mut self, per_vcpu: SimTime) -> Self {
        self.programs = (0..self.vcpus)
            .map(|_| Box::new(FixedCompute::new(per_vcpu)) as Box<dyn Program>)
            .collect();
        self
    }

    /// Attaches a virtio-net device homed on `node`.
    pub fn with_net(mut self, node: NodeId) -> Self {
        self.net_home = Some(node);
        self
    }

    /// Attaches a virtio-blk device homed on `node`.
    pub fn with_blk(mut self, node: NodeId) -> Self {
        self.blk_home = Some(node);
        self
    }

    /// Builds the simulation.
    ///
    /// # Panics
    ///
    /// Panics if the number of programs does not match the vCPU count.
    pub fn build(self) -> VmSim {
        assert_eq!(
            self.programs.len(),
            self.vcpus,
            "need exactly one program per vCPU"
        );
        let placements = self.distribution.placements(self.vcpus);
        let nodes = self.distribution.nodes_needed(self.vcpus);
        let mut b = VmBuilder::new(self.profile, nodes)
            .ram(self.ram)
            .seed(self.seed);
        for (p, prog) in placements.into_iter().zip(self.programs) {
            b = b.vcpu(p, prog);
        }
        if let Some(n) = self.net_home {
            b = b.with_net(n);
        }
        if let Some(n) = self.blk_home {
            b = b.with_blk(n);
        }
        b.build()
    }
}

/// Consolidates every vCPU of a running Aggregate VM onto `target`
/// (pCPU k for vCPU k), the way FragBFF does when a node frees up.
/// Returns the number of migrations issued.
pub fn consolidate_onto(sim: &mut VmSim, target: NodeId) -> u32 {
    let mut moved = 0;
    for i in 0..sim.world.vcpu_count() {
        let v = VcpuId::from_usize(i);
        if sim.world.placement_of(v).node != target {
            let to = Placement {
                node: target,
                pcpu: i as u32,
            };
            if sim.migrate_vcpu(v, to) {
                moved += 1;
            }
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_expansion() {
        let d = Distribution::OneVcpuPerNode;
        let p = d.placements(3);
        assert_eq!(p[2], Placement::new(2, 0));
        assert_eq!(d.nodes_needed(3), 3);

        let d = Distribution::Packed { pcpus: 2 };
        let p = d.placements(4);
        assert_eq!(p[0], Placement::new(0, 0));
        assert_eq!(p[1], Placement::new(0, 1));
        assert_eq!(p[2], Placement::new(0, 0));
        assert_eq!(d.nodes_needed(4), 1);
    }

    #[test]
    #[should_panic(expected = "custom placement count mismatch")]
    fn custom_distribution_validates_len() {
        let d = Distribution::Custom(vec![Placement::new(0, 0)]);
        let _ = d.placements(2);
    }

    #[test]
    fn quickstart_builds_and_runs() {
        let mut sim = AggregateVm::spec()
            .vcpus(4)
            .distribution(Distribution::OneVcpuPerNode)
            .compute_workload(SimTime::from_millis(5))
            .build();
        assert_eq!(sim.run(), SimTime::from_millis(5));
    }

    #[test]
    fn packed_distribution_overcommits() {
        let mut sim = AggregateVm::spec()
            .vcpus(4)
            .profile(HypervisorProfile::single_machine())
            .distribution(Distribution::Packed { pcpus: 1 })
            .compute_workload(SimTime::from_millis(5))
            .build();
        assert_eq!(sim.run(), SimTime::from_millis(20));
    }

    #[test]
    fn consolidation_moves_all_vcpus() {
        let mut sim = AggregateVm::spec()
            .vcpus(3)
            .distribution(Distribution::OneVcpuPerNode)
            .compute_workload(SimTime::from_millis(50))
            .build();
        sim.run_until(SimTime::from_millis(10));
        let moved = consolidate_onto(&mut sim, NodeId::new(0));
        assert_eq!(moved, 2);
        let _ = sim.run();
        for i in 0..3 {
            assert_eq!(
                sim.world.placement_of(VcpuId::from_usize(i)).node,
                NodeId::new(0)
            );
        }
    }
}
