//! Closed-loop external load generators.

use hypervisor::{ClientModel, ClientSend, VcpuId};
use sim_core::time::SimTime;
use sim_core::units::ByteSize;

/// An ApacheBench-style client: `concurrency` connections in flight,
/// `total` requests overall, each a `request_bytes` request answered by
/// the server (§7.1/§7.2: `ab -n 1000 -c 10`, `ab -n 100 -c 10`).
#[derive(Debug)]
pub struct AbClient {
    total: u64,
    concurrency: u64,
    request_bytes: ByteSize,
    targets: Vec<VcpuId>,
    issued: u64,
    completed: u64,
    next_conn: u64,
}

impl AbClient {
    /// Creates a client issuing `total` requests over `concurrency`
    /// connections, dispatching round-robin over `targets`.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty or `concurrency` is zero.
    pub fn new(
        total: u64,
        concurrency: u64,
        request_bytes: ByteSize,
        targets: Vec<VcpuId>,
    ) -> Self {
        assert!(!targets.is_empty(), "client needs at least one target");
        assert!(concurrency > 0, "client needs at least one connection");
        AbClient {
            total,
            concurrency,
            request_bytes,
            targets,
            issued: 0,
            completed: 0,
            next_conn: 0,
        }
    }

    fn make_send(&mut self) -> ClientSend {
        let conn = self.next_conn;
        self.next_conn += 1;
        self.issued += 1;
        let target = self.targets[(conn as usize) % self.targets.len()];
        ClientSend {
            conn,
            bytes: self.request_bytes,
            target,
        }
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

impl ClientModel for AbClient {
    fn start(&mut self, _now: SimTime) -> Vec<ClientSend> {
        let n = self.concurrency.min(self.total);
        (0..n).map(|_| self.make_send()).collect()
    }

    fn on_response(&mut self, _now: SimTime, _conn: u64, _bytes: u64) -> Vec<ClientSend> {
        self.completed += 1;
        if self.issued < self.total {
            vec![self.make_send()]
        } else {
            Vec::new()
        }
    }

    fn is_done(&self) -> bool {
        self.completed >= self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_keeps_concurrency() {
        let mut c = AbClient::new(10, 3, ByteSize::bytes(200), vec![VcpuId::new(0)]);
        let first = c.start(SimTime::ZERO);
        assert_eq!(first.len(), 3);
        // Each response triggers exactly one follow-up until 10 issued.
        let mut issued = 3;
        for conn in 0..10u64 {
            let next = c.on_response(SimTime::ZERO, conn, 100);
            if issued < 10 {
                assert_eq!(next.len(), 1);
                issued += 1;
            } else {
                assert!(next.is_empty());
            }
        }
        assert!(c.is_done());
        assert_eq!(c.completed(), 10);
    }

    #[test]
    fn round_robin_targets() {
        let targets = vec![VcpuId::new(1), VcpuId::new(2)];
        let mut c = AbClient::new(4, 4, ByteSize::bytes(100), targets.clone());
        let sends = c.start(SimTime::ZERO);
        assert_eq!(sends[0].target, targets[0]);
        assert_eq!(sends[1].target, targets[1]);
        assert_eq!(sends[2].target, targets[0]);
    }

    #[test]
    fn fewer_requests_than_concurrency() {
        let mut c = AbClient::new(2, 10, ByteSize::bytes(100), vec![VcpuId::new(0)]);
        assert_eq!(c.start(SimTime::ZERO).len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_targets_panics() {
        let _ = AbClient::new(1, 1, ByteSize::bytes(1), vec![]);
    }
}
