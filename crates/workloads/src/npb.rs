//! NAS Parallel Benchmark models.
//!
//! The paper runs NPB two ways:
//!
//! * **Serial multi-process** (Figures 8/9/10): one serial instance per
//!   vCPU. There is no application-level sharing, but each instance's
//!   allocation phase drives the guest kernel's allocator — whose hot pages
//!   *are* shared — which is exactly why IS and FT scale sublinearly on
//!   the Aggregate VM (§7.2).
//! * **OpenMP** (Figure 1): one multithreaded instance whose threads share
//!   the dataset, parameterized by a sharing degree.
//!
//! Each kernel is characterized by (a) its serial compute time at the
//! chosen class, (b) the size of its dataset, and (c) how allocation-heavy
//! its startup is. Values are scaled so a full suite run simulates in
//! seconds while preserving the compute-to-allocation ratios the paper's
//! behaviour depends on.

use dsm::{Access, PageId};
use hypervisor::{Op, ProgCtx, Program};
use sim_core::time::SimTime;

/// The eight kernels used in the paper's NPB figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NpbKernel {
    /// Block tri-diagonal solver.
    Bt,
    /// Conjugate gradient.
    Cg,
    /// Embarrassingly parallel.
    Ep,
    /// 3-D FFT (allocation-heavy).
    Ft,
    /// Integer sort (allocation-heavy, short compute).
    Is,
    /// Lower-upper Gauss-Seidel.
    Lu,
    /// Multi-grid.
    Mg,
    /// Scalar penta-diagonal solver.
    Sp,
}

impl NpbKernel {
    /// All kernels, in the order the paper's figures list them.
    pub fn all() -> [NpbKernel; 8] {
        use NpbKernel::*;
        [Bt, Cg, Ep, Ft, Is, Lu, Mg, Sp]
    }

    /// The kernel's display name.
    pub fn name(self) -> &'static str {
        match self {
            NpbKernel::Bt => "BT",
            NpbKernel::Cg => "CG",
            NpbKernel::Ep => "EP",
            NpbKernel::Ft => "FT",
            NpbKernel::Is => "IS",
            NpbKernel::Lu => "LU",
            NpbKernel::Mg => "MG",
            NpbKernel::Sp => "SP",
        }
    }
}

/// Problem-class scaling (the paper picks classes giving ≥10 s runs; we
/// scale down ~100x to keep simulations fast while preserving ratios).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NpbClass {
    /// Scaled-down class for fast simulation (default).
    Sim,
    /// Larger class (10x Sim) for soak runs.
    SimLarge,
}

/// Per-kernel characteristics: (compute_ms, dataset_pages, alloc_heaviness).
///
/// `alloc_heaviness` is the fraction of total time a 1-vCPU run spends in
/// the allocation phase. IS is the extreme (integer sort: bucket setup
/// dominates); EP is pure compute.
fn traits_of(kernel: NpbKernel) -> (u64, u64, f64) {
    match kernel {
        NpbKernel::Bt => (180, 3_000, 0.02),
        NpbKernel::Cg => (120, 4_000, 0.03),
        NpbKernel::Ep => (150, 200, 0.005),
        NpbKernel::Ft => (140, 8_000, 0.22),
        NpbKernel::Is => (100, 11_000, 0.45),
        NpbKernel::Lu => (200, 3_000, 0.02),
        NpbKernel::Mg => (130, 6_000, 0.04),
        NpbKernel::Sp => (190, 3_000, 0.02),
    }
}

/// A serial NPB instance (one per vCPU in the multi-process experiments).
#[derive(Debug)]
pub struct NpbSerial {
    kernel: NpbKernel,
    /// Remaining allocation batches.
    alloc_batches: u64,
    pages_per_batch: u64,
    /// Touches of freshly allocated pages pending per batch.
    region: Option<guest::memory::Region>,
    touch_cursor: u64,
    /// Remaining compute chunks after allocation.
    compute_chunks: u64,
    chunk: SimTime,
    state: SerialState,
    instance: usize,
    /// Kernel op to issue after the current compute chunk.
    pending_kernel: Option<guest::KernelOp>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SerialState {
    Alloc,
    TouchPages,
    Compute,
    Finished,
}

impl NpbSerial {
    /// Creates instance `instance` of `kernel` at `class`.
    pub fn new(kernel: NpbKernel, class: NpbClass, instance: usize) -> Self {
        let (compute_ms, dataset_pages, alloc_frac) = traits_of(kernel);
        let scale = match class {
            NpbClass::Sim => 1,
            NpbClass::SimLarge => 10,
        };
        let compute = SimTime::from_millis(compute_ms * scale);
        // Allocation phase time budget is implied by batch count: each
        // AllocPages(64) costs ~40us of kernel time.
        let batches = ((compute.as_secs_f64() * alloc_frac) / 40e-6).ceil() as u64;
        let batches = batches.max(1);
        // Compute in 1ms chunks with a syscall between chunks.
        let chunk = SimTime::from_millis(1);
        NpbSerial {
            kernel,
            alloc_batches: batches,
            pages_per_batch: (dataset_pages * scale / batches).max(1),
            region: None,
            touch_cursor: 0,
            compute_chunks: compute.as_nanos() / chunk.as_nanos(),
            chunk,
            state: SerialState::Alloc,
            instance,
            pending_kernel: None,
        }
    }

    /// The kernel being modelled.
    pub fn kernel(&self) -> NpbKernel {
        self.kernel
    }
}

impl Program for NpbSerial {
    fn next(&mut self, cx: &mut ProgCtx<'_>) -> Op {
        if let Some(op) = self.pending_kernel.take() {
            return Op::Kernel(op);
        }
        loop {
            match self.state {
                SerialState::Alloc => {
                    if self.alloc_batches == 0 {
                        self.state = SerialState::Compute;
                        continue;
                    }
                    self.alloc_batches -= 1;
                    if self.region.is_none() {
                        // Carve one region per instance; batches fill it.
                        let total = self.pages_per_batch * (self.alloc_batches + 1);
                        self.region = Some(cx.alloc_region(
                            &format!("npb.{}.{}", self.kernel.name(), self.instance),
                            total,
                        ));
                    }
                    self.state = SerialState::TouchPages;
                    return Op::Kernel(guest::KernelOp::AllocPages(self.pages_per_batch));
                }
                SerialState::TouchPages => {
                    // First-touch a sample of the freshly allocated batch
                    // (zeroing already charged; this drives NUMA homing).
                    let region = self.region.expect("allocated in Alloc state");
                    let sample = self.pages_per_batch.min(8);
                    let touches: Vec<(PageId, Access)> = (0..sample)
                        .map(|i| {
                            let idx = (self.touch_cursor + i) % region.pages;
                            (region.page(idx), Access::Write)
                        })
                        .collect();
                    self.touch_cursor += sample;
                    self.state = SerialState::Alloc;
                    return Op::TouchBatch(touches);
                }
                SerialState::Compute => {
                    if self.compute_chunks == 0 {
                        self.state = SerialState::Finished;
                        return Op::Done;
                    }
                    self.compute_chunks -= 1;
                    // A syscall every 16 chunks (progress output, timing)
                    // plus the scheduler tick — the steady-state kernel
                    // noise the padded layout keeps off shared pages.
                    if self.compute_chunks.is_multiple_of(16) {
                        self.pending_kernel = Some(guest::KernelOp::Syscall);
                    } else if self.compute_chunks.is_multiple_of(4) {
                        self.pending_kernel = Some(guest::KernelOp::TimerTick);
                    }
                    return Op::Compute(self.chunk);
                }
                SerialState::Finished => return Op::Done,
            }
        }
    }

    fn label(&self) -> &str {
        self.kernel.name()
    }
}

/// An OpenMP NPB thread: compute chunks interleaved with accesses to a
/// shared dataset, parameterized by sharing degree (Figure 1).
#[derive(Debug)]
pub struct NpbOmp {
    /// Shared dataset pages (same region across all threads).
    shared: guest::memory::Region,
    /// Probability that a chunk boundary touches a shared page with a
    /// write (the "sharing degree").
    write_share: f64,
    compute_chunks: u64,
    chunk: SimTime,
    thread: usize,
    threads: usize,
    cursor: u64,
    pending_sync: bool,
}

impl NpbOmp {
    /// Creates thread `thread` of `threads` over `shared`, computing
    /// `total` in `chunk`-sized pieces with the given write-sharing
    /// probability per chunk.
    pub fn new(
        shared: guest::memory::Region,
        write_share: f64,
        total: SimTime,
        chunk: SimTime,
        thread: usize,
        threads: usize,
    ) -> Self {
        NpbOmp {
            shared,
            write_share,
            compute_chunks: total.as_nanos() / chunk.as_nanos(),
            chunk,
            thread,
            threads,
            cursor: thread as u64 * 13,
            pending_sync: false,
        }
    }
}

impl Program for NpbOmp {
    fn next(&mut self, cx: &mut ProgCtx<'_>) -> Op {
        if self.pending_sync {
            self.pending_sync = false;
            // OpenMP reduction / loop-bound update: a shared write.
            let page = self.shared.page(self.cursor % self.shared.pages);
            self.cursor += 7;
            return Op::Touch {
                page,
                access: Access::Write,
            };
        }
        if self.compute_chunks == 0 {
            return Op::Done;
        }
        // Fault-planning pass: draw the per-chunk sharing coin for a whole
        // run of chunks up front and emit the run as ONE compute burst.
        // Between shared writes the thread never blocks, so a run of
        // chunks does the same pCPU work and the same DSM traffic as one
        // burst of their sum — but each chunk previously cost a full
        // VcpuStep/CpuDone event cycle. The rng stream and the cursor walk
        // are preserved exactly; completion times can drift ~0.1% because
        // the processor-sharing model quantizes per op (a sum of per-chunk
        // ceilings is not the ceiling of the sum under contention), which
        // leaves the sharing-cost ratios fig01 reports unchanged.
        let mut run = 0u64;
        while self.compute_chunks > 0 && !self.pending_sync {
            self.compute_chunks -= 1;
            run += 1;
            self.pending_sync = cx.rng.chance(self.write_share);
            if !self.pending_sync {
                // Read-mostly access to the shared dataset.
                let page = self
                    .shared
                    .page((self.cursor + self.thread as u64) % self.shared.pages);
                self.cursor += self.threads as u64;
                let _ = page; // Reads of replicated pages are cheap; fold into compute.
            }
        }
        Op::Compute(SimTime::from_nanos(self.chunk.as_nanos() * run))
    }

    fn label(&self) -> &str {
        "NPB-OMP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypervisor::{HypervisorProfile, Placement, VmBuilder, VmSim};
    use sim_core::units::ByteSize;

    fn build_serial(
        kernel: NpbKernel,
        vcpus: usize,
        placements: &[Placement],
        profile: HypervisorProfile,
    ) -> VmSim {
        let mut b = VmBuilder::new(profile, 4).ram(ByteSize::gib(8));
        for (i, &p) in placements.iter().take(vcpus).enumerate() {
            b = b.vcpu(p, Box::new(NpbSerial::new(kernel, NpbClass::Sim, i)));
        }
        b.build()
    }

    #[test]
    fn ep_scales_linearly_on_aggregate_vm() {
        // 4 distributed instances of EP vs 4 overcommitted on one pCPU.
        let spread: Vec<Placement> = (0..4).map(|i| Placement::new(i, 0)).collect();
        let packed: Vec<Placement> = (0..4).map(|_| Placement::new(0, 0)).collect();
        let t_agg = build_serial(NpbKernel::Ep, 4, &spread, HypervisorProfile::fragvisor()).run();
        let t_over = build_serial(
            NpbKernel::Ep,
            4,
            &packed,
            HypervisorProfile::single_machine(),
        )
        .run();
        let speedup = t_over.as_secs_f64() / t_agg.as_secs_f64();
        assert!(
            (3.2..4.2).contains(&speedup),
            "EP speedup should be ~3.9x, got {speedup:.2}"
        );
    }

    #[test]
    fn is_scales_sublinearly() {
        let spread: Vec<Placement> = (0..4).map(|i| Placement::new(i, 0)).collect();
        let packed: Vec<Placement> = (0..4).map(|_| Placement::new(0, 0)).collect();
        let t_agg = build_serial(NpbKernel::Is, 4, &spread, HypervisorProfile::fragvisor()).run();
        let t_over = build_serial(
            NpbKernel::Is,
            4,
            &packed,
            HypervisorProfile::single_machine(),
        )
        .run();
        let is_speedup = t_over.as_secs_f64() / t_agg.as_secs_f64();
        let t_agg_ep =
            build_serial(NpbKernel::Ep, 4, &spread, HypervisorProfile::fragvisor()).run();
        let t_over_ep = build_serial(
            NpbKernel::Ep,
            4,
            &packed,
            HypervisorProfile::single_machine(),
        )
        .run();
        let ep_speedup = t_over_ep.as_secs_f64() / t_agg_ep.as_secs_f64();
        assert!(
            is_speedup < ep_speedup,
            "IS ({is_speedup:.2}) must scale worse than EP ({ep_speedup:.2})"
        );
        assert!(
            is_speedup > 1.5,
            "IS still beats overcommit: {is_speedup:.2}"
        );
    }

    #[test]
    fn fragvisor_beats_giantvm_on_is() {
        let spread: Vec<Placement> = (0..4).map(|i| Placement::new(i, 0)).collect();
        let t_frag = build_serial(NpbKernel::Is, 4, &spread, HypervisorProfile::fragvisor()).run();
        let t_giant = build_serial(NpbKernel::Is, 4, &spread, HypervisorProfile::giantvm()).run();
        let ratio = t_giant.as_secs_f64() / t_frag.as_secs_f64();
        assert!(
            ratio > 1.3,
            "FragVisor should clearly beat GiantVM on IS: {ratio:.2}"
        );
    }

    #[test]
    fn omp_sharing_degree_drives_slowdown() {
        let run = |write_share: f64, spread: bool| -> SimTime {
            let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2).ram(ByteSize::gib(4));
            // Pre-carve the shared region through a throwaway allocator
            // clone trick: allocate it in the first program's first call.
            // Here we instead construct the region coordinates directly.
            let shared = guest::memory::Region {
                first: PageId::new(400_000),
                pages: 64,
            };
            for t in 0..2usize {
                let placement = if spread {
                    Placement::new(t as u32, 0)
                } else {
                    Placement::new(0, 0)
                };
                b = b.vcpu(
                    placement,
                    Box::new(NpbOmp::new(
                        shared,
                        write_share,
                        SimTime::from_millis(20),
                        SimTime::from_micros(5),
                        t,
                        2,
                    )),
                );
            }
            b.build().run()
        };
        let low = run(0.02, true);
        let high = run(0.8, true);
        assert!(
            high.as_nanos() as f64 > low.as_nanos() as f64 * 1.5,
            "high sharing {high} vs low {low}"
        );
    }

    #[test]
    fn kernel_traits_cover_all() {
        for k in NpbKernel::all() {
            let (c, d, a) = traits_of(k);
            assert!(c > 0 && d > 0 && (0.0..1.0).contains(&a), "{k:?}");
        }
        assert_eq!(NpbKernel::all().len(), 8);
    }
}
