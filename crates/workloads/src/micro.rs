//! Synthetic sharing microbenchmarks (§7.1, Figures 4 and 5).

use std::cell::Cell;
use std::rc::Rc;

use dsm::{Access, PageId};
use hypervisor::{Op, ProgCtx, Program};
use sim_core::time::SimTime;

/// Sharing pattern of the Figure-4 loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingMode {
    /// All threads access the same location (same page).
    TrueSharing,
    /// All threads access different locations on the same page —
    /// indistinguishable from true sharing at page granularity, which is
    /// exactly the point of the figure.
    FalseSharing,
    /// Each thread accesses its own page.
    NoSharing,
}

impl SharingMode {
    /// The page thread `vcpu` touches on iteration `iter`, given a base
    /// page and the thread count.
    ///
    /// Under true/false sharing every thread hammers the *same* page
    /// (page granularity cannot tell the two apart — the point of the
    /// figure). Under no sharing each thread streams through its own page
    /// range, so every iteration still performs a cold remote fetch but
    /// never contends: the figure normalizes the sharing cases to exactly
    /// this uncontended fault cost.
    pub fn page_for(self, base: PageId, vcpu: usize, threads: usize, iter: u64) -> PageId {
        match self {
            SharingMode::TrueSharing | SharingMode::FalseSharing => base,
            SharingMode::NoSharing => {
                PageId::from_usize(base.index() + threads + vcpu * 1_000_000 + iter as usize)
            }
        }
    }
}

/// The Figure-4 microbenchmark: a fixed number of read+write iterations
/// against the mode's page pattern.
#[derive(Debug)]
pub struct SharingLoop {
    mode: SharingMode,
    base: PageId,
    vcpu: usize,
    threads: usize,
    iters: u64,
    done_iters: u64,
    per_iter_cpu: SimTime,
    phase: u8,
    registered: bool,
}

impl SharingLoop {
    /// A loop of `iters` read+write iterations for thread `vcpu` of
    /// `threads`, burning `per_iter_cpu` between touches.
    pub fn new(
        mode: SharingMode,
        base: PageId,
        vcpu: usize,
        threads: usize,
        iters: u64,
        per_iter_cpu: SimTime,
    ) -> Self {
        SharingLoop {
            mode,
            base,
            vcpu,
            threads,
            iters,
            done_iters: 0,
            per_iter_cpu,
            phase: 0,
            registered: false,
        }
    }

    fn current_page(&self) -> PageId {
        self.mode
            .page_for(self.base, self.vcpu, self.threads, self.done_iters)
    }
}

impl Program for SharingLoop {
    fn next(&mut self, _cx: &mut ProgCtx<'_>) -> Op {
        if self.done_iters >= self.iters {
            return Op::Done;
        }
        match self.phase {
            0 => {
                self.phase = 1;
                Op::Touch {
                    page: self.current_page(),
                    access: Access::Read,
                }
            }
            1 => {
                self.phase = 2;
                Op::Touch {
                    page: self.current_page(),
                    access: Access::Write,
                }
            }
            _ => {
                self.phase = 0;
                self.done_iters += 1;
                let _ = self.registered;
                Op::Compute(self.per_iter_cpu)
            }
        }
    }

    fn label(&self) -> &str {
        "sharing-loop"
    }
}

/// The Figure-5 microbenchmark: writes to a fixed location until a
/// deadline, counting completed writes.
#[derive(Debug)]
pub struct ConcurrentWriter {
    page: PageId,
    deadline: SimTime,
    per_write_cpu: SimTime,
    /// Completed writes, shared with the harness (the builder consumes the
    /// program, so results flow out through this cell).
    writes: Rc<Cell<u64>>,
    charge_pending: bool,
    /// Work to charge for the writes issued by the last batch.
    charge_work: SimTime,
    /// Maximum writes to coalesce into one touch-batch + compute event.
    batch: u32,
    /// Size of the in-flight batch, for calibrating `wall_per_write`.
    in_flight: u32,
    /// Issue time of the in-flight batch.
    issued_at: SimTime,
    /// Observed wall time per write (compute time divided by the pCPU
    /// share), calibrated from the previous batch.
    wall_per_write: Option<SimTime>,
}

impl ConcurrentWriter {
    /// Writes `page` until `deadline`, burning `per_write_cpu` per write.
    /// Returns the program and the shared write counter.
    pub fn new(page: PageId, deadline: SimTime, per_write_cpu: SimTime) -> (Self, Rc<Cell<u64>>) {
        ConcurrentWriter::batched(page, deadline, per_write_cpu, 1)
    }

    /// Like [`ConcurrentWriter::new`], but issues up to `batch` writes per
    /// engine event (one [`Op::TouchBatch`] plus one combined charge).
    ///
    /// Batching is an event-count optimization, not a model change: each
    /// batch issues exactly the writes the fine-grained loop would have
    /// issued over the same interval, calibrated from the observed wall
    /// time per write of the previous batch. The calibration is exact
    /// while the pCPU share stays constant over a batch — true for
    /// symmetric workloads like Figure 5 — so only use `batch > 1` when
    /// no *other* workload shares this writer's pCPU mid-run and the page
    /// is not write-shared across nodes (coalescing would coarsen the
    /// coherence interleaving).
    pub fn batched(
        page: PageId,
        deadline: SimTime,
        per_write_cpu: SimTime,
        batch: u32,
    ) -> (Self, Rc<Cell<u64>>) {
        let writes = Rc::new(Cell::new(0));
        (
            ConcurrentWriter {
                page,
                deadline,
                per_write_cpu,
                writes: Rc::clone(&writes),
                charge_pending: false,
                charge_work: SimTime::ZERO,
                batch: batch.max(1),
                in_flight: 0,
                issued_at: SimTime::ZERO,
                wall_per_write: None,
            },
            writes,
        )
    }
}

impl Program for ConcurrentWriter {
    fn next(&mut self, cx: &mut ProgCtx<'_>) -> Op {
        if cx.now >= self.deadline {
            return Op::Done;
        }
        if self.charge_pending {
            self.charge_pending = false;
            return Op::Compute(self.charge_work);
        }
        // A completed batch calibrates the wall time per write for the
        // next one (pCPU-share changes show up with one batch of lag).
        if self.in_flight > 0 && cx.now > self.issued_at {
            self.wall_per_write = Some(SimTime(
                (cx.now - self.issued_at).as_nanos() / u64::from(self.in_flight),
            ));
        }
        // Issue only writes the fine-grained loop would have issued before
        // the deadline: write `j` of the batch starts at
        // `now + j * wall_per_write`, so `k` writes fit iff
        // `(k - 1) * wall < deadline - now`.
        let n = match self.wall_per_write {
            Some(wall) if self.batch > 1 && !wall.is_zero() => {
                let remaining = (self.deadline - cx.now).as_nanos();
                let fit = remaining.div_ceil(wall.as_nanos());
                u64::from(self.batch).min(fit).max(1) as u32
            }
            _ => 1,
        };
        self.in_flight = n;
        self.issued_at = cx.now;
        self.writes.set(self.writes.get() + u64::from(n));
        self.charge_pending = !self.per_write_cpu.is_zero();
        self.charge_work = SimTime(self.per_write_cpu.as_nanos() * u64::from(n));
        if n == 1 {
            Op::Touch {
                page: self.page,
                access: Access::Write,
            }
        } else {
            Op::TouchBatch(vec![(self.page, Access::Write); n as usize])
        }
    }

    fn label(&self) -> &str {
        "concurrent-writer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypervisor::{HypervisorProfile, Placement, VmBuilder};

    #[test]
    fn sharing_mode_page_selection() {
        let base = PageId::new(100);
        assert_eq!(SharingMode::TrueSharing.page_for(base, 3, 4, 9), base);
        assert_eq!(SharingMode::FalseSharing.page_for(base, 3, 4, 9), base);
        // Streaming: distinct per thread and iteration.
        let a = SharingMode::NoSharing.page_for(base, 0, 4, 0);
        let b = SharingMode::NoSharing.page_for(base, 0, 4, 1);
        let c = SharingMode::NoSharing.page_for(base, 1, 4, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, base);
    }

    #[test]
    fn no_sharing_is_faster_than_true_sharing() {
        let run = |mode: SharingMode| -> SimTime {
            let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2);
            let base = PageId::new(700_000);
            for v in 0..2usize {
                b = b.vcpu(
                    Placement::new(v as u32, 0),
                    Box::new(SharingLoop::new(
                        mode,
                        base,
                        v,
                        2,
                        500,
                        SimTime::from_nanos(50),
                    )),
                );
            }
            b.build().run()
        };
        let shared = run(SharingMode::TrueSharing);
        let private = run(SharingMode::NoSharing);
        assert!(
            shared.as_nanos() > private.as_nanos(),
            "shared {shared} vs private {private}"
        );
        // False sharing behaves like true sharing at page granularity.
        let false_sharing = run(SharingMode::FalseSharing);
        let ratio = false_sharing.as_secs_f64() / shared.as_secs_f64();
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn concurrent_writer_counts_writes() {
        let deadline = SimTime::from_millis(1);
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 1);
        let (prog, writes) =
            ConcurrentWriter::new(PageId::new(800_000), deadline, SimTime::from_nanos(100));
        b = b.vcpu(Placement::new(0, 0), Box::new(prog));
        let mut sim = b.build();
        let done = sim.run();
        assert!(done >= deadline);
        // Local writes at ~100ns each: roughly 10k writes in 1ms.
        assert!(writes.get() > 4_000, "writes = {}", writes.get());
    }
}
