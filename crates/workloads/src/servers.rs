//! Simple guest servers for the delegation microbenchmarks (§7.1).

use dsm::PageId;
use hypervisor::{GuestMsg, Op, ProgCtx, Program};
use sim_core::time::SimTime;
use sim_core::units::ByteSize;

/// A static NGINX worker: answers every request with a fixed-size response
/// (Figure 6's network-delegation benchmark, `ab` with varying sizes).
#[derive(Debug)]
pub struct StaticServer {
    response: ByteSize,
    /// Per-request CPU (parsing, headers, sendfile setup).
    request_cpu: SimTime,
    /// Dynamic content: the payload is rewritten for every request, so
    /// remote copies are invalidated each time (exercises the DSM data
    /// path even for repeated requests).
    dynamic: bool,
    payload: Vec<PageId>,
    payload_region: Option<guest::memory::Region>,
    state: ServerState,
    pending_conn: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerState {
    Warmup,
    Recv,
    Syscall,
    Work,
    Regen,
    Send,
}

impl StaticServer {
    /// A server answering with `response` bytes per request.
    pub fn new(response: ByteSize) -> Self {
        StaticServer {
            response,
            request_cpu: SimTime::from_micros(80),
            dynamic: false,
            payload: Vec::new(),
            payload_region: None,
            state: ServerState::Warmup,
            pending_conn: 0,
        }
    }

    /// A server regenerating the response body on every request.
    pub fn dynamic(response: ByteSize) -> Self {
        StaticServer {
            dynamic: true,
            ..Self::new(response)
        }
    }

    fn ensure_payload(&mut self, cx: &mut ProgCtx<'_>) {
        if self.payload_region.is_none() {
            let pages = self.response.pages_4k().clamp(1, 1024);
            let region = cx.alloc_region("static.payload", pages);
            self.payload = region.iter().collect();
            self.payload_region = Some(region);
        }
    }
}

impl Program for StaticServer {
    fn next(&mut self, cx: &mut ProgCtx<'_>) -> Op {
        loop {
            match self.state {
                ServerState::Warmup => {
                    // Populate the page cache with the served file, so the
                    // payload's master copies live on this worker's node.
                    self.ensure_payload(cx);
                    self.state = ServerState::Recv;
                    return Op::TouchBatch(
                        self.payload
                            .iter()
                            .map(|&p| (p, dsm::Access::Write))
                            .collect(),
                    );
                }
                ServerState::Recv => {
                    self.state = ServerState::Syscall;
                    return Op::NetRecv;
                }
                ServerState::Syscall => {
                    if let Some(GuestMsg::Net { conn, .. }) = cx.delivered {
                        self.pending_conn = conn;
                        self.state = ServerState::Work;
                        return Op::Kernel(guest::KernelOp::Syscall);
                    }
                    // Spurious wake: go back to receiving.
                    self.state = ServerState::Recv;
                    continue;
                }
                ServerState::Work => {
                    self.ensure_payload(cx);
                    self.state = if self.dynamic {
                        ServerState::Regen
                    } else {
                        ServerState::Send
                    };
                    return Op::Compute(self.request_cpu);
                }
                ServerState::Regen => {
                    self.state = ServerState::Send;
                    return Op::TouchBatch(
                        self.payload
                            .iter()
                            .map(|&p| (p, dsm::Access::Write))
                            .collect(),
                    );
                }
                ServerState::Send => {
                    self.state = ServerState::Recv;
                    return Op::NetSend {
                        conn: self.pending_conn,
                        bytes: self.response,
                        payload: self.payload.clone(),
                    };
                }
            }
        }
    }

    fn label(&self) -> &str {
        "static-server"
    }
}

/// A single-threaded sequential storage streamer (Figure 7): reads or
/// writes `total` bytes through virtio-blk in `chunk`-sized requests.
#[derive(Debug)]
pub struct BlkStreamer {
    total: ByteSize,
    chunk: ByteSize,
    write: bool,
    tmpfs: bool,
    issued: u64,
    buffer: Option<guest::memory::Region>,
}

impl BlkStreamer {
    /// Streams `total` bytes in `chunk` requests.
    pub fn new(total: ByteSize, chunk: ByteSize, write: bool, tmpfs: bool) -> Self {
        BlkStreamer {
            total,
            chunk,
            write,
            tmpfs,
            issued: 0,
            buffer: None,
        }
    }
}

impl Program for BlkStreamer {
    fn next(&mut self, cx: &mut ProgCtx<'_>) -> Op {
        if self.issued * self.chunk.as_u64() >= self.total.as_u64() {
            return Op::Done;
        }
        let buffer = *self
            .buffer
            .get_or_insert_with(|| cx.alloc.alloc("blk.buffer", self.chunk.pages_4k().max(1)));
        self.issued += 1;
        Op::BlkIo {
            bytes: self.chunk,
            write: self.write,
            tmpfs: self.tmpfs,
            buffer: buffer.iter().collect(),
        }
    }

    fn label(&self) -> &str {
        "blk-streamer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::AbClient;
    use comm::{LinkProfile, NodeId};
    use hypervisor::{ClientConfig, HypervisorProfile, Placement, VcpuId, VmBuilder};

    #[test]
    fn static_server_answers_all_requests() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2).with_net(NodeId::new(0));
        b = b.vcpu(
            Placement::new(0, 0),
            Box::new(StaticServer::new(ByteSize::kib(64))),
        );
        b = b.with_client(ClientConfig {
            node: NodeId::new(0), // Replaced by the builder.
            link: LinkProfile::ethernet_1g(),
            model: Box::new(AbClient::new(
                20,
                4,
                ByteSize::bytes(200),
                vec![VcpuId::new(0)],
            )),
        });
        let mut sim = b.build();
        // The server loops forever; run until the client drains.
        while !sim.world.client_done() {
            assert!(sim.engine.step(&mut sim.world), "queue drained early");
        }
        assert_eq!(sim.world.stats.completed_requests, 20);
        assert!(sim.world.stats.request_latency.mean() > 0.0);
    }

    #[test]
    fn delegated_server_is_slower_than_local() {
        let run = |server_node: u32| -> f64 {
            let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 2).with_net(NodeId::new(0));
            b = b.vcpu(
                Placement::new(server_node, 0),
                Box::new(StaticServer::new(ByteSize::mib(1))),
            );
            b = b.with_client(ClientConfig {
                node: NodeId::new(0),
                link: LinkProfile::ethernet_1g(),
                model: Box::new(AbClient::new(
                    30,
                    4,
                    ByteSize::bytes(200),
                    vec![VcpuId::new(0)],
                )),
            });
            let mut sim = b.build();
            while !sim.world.client_done() {
                assert!(sim.engine.step(&mut sim.world));
            }
            sim.now().as_secs_f64()
        };
        let local = run(0);
        let delegated = run(1);
        assert!(delegated >= local, "delegated {delegated} vs local {local}");
        // With DSM-bypass the penalty is bounded (paper: delegation is
        // affordable); well under 2x for 1MiB responses on 1GbE.
        assert!(delegated / local < 1.6, "penalty {}", delegated / local);
    }

    #[test]
    fn blk_streamer_moves_all_bytes() {
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 1).with_blk(NodeId::new(0));
        b = b.vcpu(
            Placement::new(0, 0),
            Box::new(BlkStreamer::new(
                ByteSize::mib(16),
                ByteSize::mib(1),
                false,
                false,
            )),
        );
        let mut sim = b.build();
        let done = sim.run();
        // 16 MiB at 500 MB/s ≈ 33.5 ms minimum.
        assert!(done.as_millis_f64() > 33.0, "{done}");
    }
}
