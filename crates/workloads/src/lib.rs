//! Guest workload models for the Aggregate VM evaluation.
//!
//! Each module reproduces one family from the paper's evaluation:
//!
//! * [`micro`] — the §7.1 synthetic sharing loops (Figures 4 and 5).
//! * [`npb`] — NAS Parallel Benchmark models: serial multi-process
//!   instances (Figures 8/9/10) and OpenMP shared-memory variants
//!   (Figure 1), parameterized by compute length, allocation-phase weight
//!   and sharing degree.
//! * [`servers`] — the static NGINX server of the network-delegation
//!   microbenchmark (Figure 6) and the single-threaded storage streamer
//!   (Figure 7).
//! * [`lemp`] — the LEMP stack: an NGINX dispatcher on vCPU0 and PHP
//!   workers on the remaining vCPUs (Figure 12).
//! * [`faas`] — the OpenLambda serverless pipeline: download → extract →
//!   face-detect (Figure 13).
//! * [`client`] — closed-loop external load generators (ApacheBench-style).
//!
//! All programs are deterministic given their [`sim_core::rng::DetRng`]
//! stream; compute lengths and memory behaviour are calibrated so the
//! *ratios* the paper reports (Aggregate VM vs overcommitment vs GiantVM)
//! emerge from the mechanisms, not from hard-coded outcomes.

#![warn(missing_docs)]

pub mod client;
pub mod faas;
pub mod lemp;
pub mod micro;
pub mod npb;
pub mod servers;

pub use client::AbClient;
pub use faas::{FaasPhases, FaasWorker, FAAS_PHASE_BARRIER};
pub use lemp::{DbWorker, LempConfig, NginxDispatcher, PhpDbWorker, PhpWorker};
pub use micro::{ConcurrentWriter, SharingLoop, SharingMode};
pub use npb::{NpbClass, NpbKernel, NpbOmp, NpbSerial};
pub use servers::{BlkStreamer, StaticServer};
