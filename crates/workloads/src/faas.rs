//! The OpenLambda serverless pipeline (§7.2, Figure 13).
//!
//! One OpenLambda worker runs per vCPU (the artifact pins `./ol worker`
//! with `taskset`). Each invocation executes three phases whose times the
//! paper breaks down:
//!
//! 1. **download** — fetch a compressed picture archive from a database on
//!    the same network (network-bound; this is where FragVisor's
//!    DSM-bypass beats GiantVM by up to 13x);
//! 2. **extract** — decompress into freshly allocated memory (write-heavy:
//!    first writes to new regions trigger write-exclusive invalidations
//!    when pages are homed remotely);
//! 3. **detect** — run face detection over the extracted pictures
//!    (compute-bound; scales with distributed pCPUs).

use std::cell::RefCell;
use std::rc::Rc;

use dsm::{Access, PageId};
use hypervisor::{GuestMsg, Op, ProgCtx, Program};
use sim_core::time::SimTime;
use sim_core::units::ByteSize;

/// Barrier id reserved for cross-worker phase alignment (unused by the
/// default workload but exported for phase-locked variants).
pub const FAAS_PHASE_BARRIER: u32 = 0xFAA5;

/// Per-phase simulated durations, collected per completed invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaasPhases {
    /// Download (request arrival to archive fully received).
    pub download: SimTime,
    /// Extraction (allocation + writes).
    pub extract: SimTime,
    /// Face detection (compute).
    pub detect: SimTime,
}

/// An OpenLambda worker serving face-detection invocations.
#[derive(Debug)]
pub struct FaasWorker {
    /// Compressed archive size (the "download").
    archive: ByteSize,
    /// Extracted size (decompressed pictures).
    extracted: ByteSize,
    /// Face-detection compute per invocation.
    detect_cpu: SimTime,
    /// Invocations to serve before exiting (0 = serve forever).
    invocations: u64,
    served: u64,
    state: FaasState,
    conn: u64,
    phase_start: SimTime,
    phases: Rc<RefCell<Vec<FaasPhases>>>,
    current: FaasPhases,
    extract_region: Option<guest::memory::Region>,
    extract_cursor: u64,
    worker: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaasState {
    Recv,
    StartExtract,
    ExtractChunk,
    Detect,
    Respond,
}

impl FaasWorker {
    /// Creates a worker serving `invocations` requests; phase timings are
    /// reported through the returned shared vector.
    pub fn new(worker: usize, invocations: u64) -> (Self, Rc<RefCell<Vec<FaasPhases>>>) {
        let phases = Rc::new(RefCell::new(Vec::new()));
        (
            FaasWorker {
                // The paper's workload: a few MB of compressed pictures.
                archive: ByteSize::mib(4),
                extracted: ByteSize::mib(12),
                detect_cpu: SimTime::from_millis(260),
                invocations,
                served: 0,
                state: FaasState::Recv,
                conn: 0,
                phase_start: SimTime::ZERO,
                phases: Rc::clone(&phases),
                current: FaasPhases::default(),
                extract_region: None,
                extract_cursor: 0,
                worker,
            },
            phases,
        )
    }

    /// The archive size a client must send per invocation.
    pub fn archive_size(&self) -> ByteSize {
        self.archive
    }
}

/// Pages written per extraction chunk event.
const EXTRACT_CHUNK_PAGES: u64 = 32;

impl Program for FaasWorker {
    fn next(&mut self, cx: &mut ProgCtx<'_>) -> Op {
        loop {
            match self.state {
                FaasState::Recv => {
                    if self.invocations > 0 && self.served >= self.invocations {
                        return Op::Done;
                    }
                    match cx.delivered.take() {
                        Some(GuestMsg::Net { conn, .. }) => {
                            // The archive just finished arriving: the
                            // download phase is the request's network time,
                            // which the client-side latency captures; for
                            // the server-side breakdown we timestamp here.
                            self.conn = conn;
                            self.current.download = cx.now - self.phase_start;
                            self.phase_start = cx.now;
                            self.state = FaasState::StartExtract;
                            return Op::Kernel(guest::KernelOp::Syscall);
                        }
                        _ => {
                            self.phase_start = cx.now;
                            return Op::NetRecv;
                        }
                    }
                }
                FaasState::StartExtract => {
                    // Allocate the output region (per invocation, reused).
                    if self.extract_region.is_none() {
                        self.extract_region = Some(cx.alloc_region(
                            &format!("faas{}.extract", self.worker),
                            self.extracted.pages_4k(),
                        ));
                    }
                    self.extract_cursor = 0;
                    self.state = FaasState::ExtractChunk;
                    return Op::Kernel(guest::KernelOp::AllocPages(
                        self.extracted.pages_4k().min(512),
                    ));
                }
                FaasState::ExtractChunk => {
                    let region = self.extract_region.expect("allocated in StartExtract");
                    if self.extract_cursor >= region.pages {
                        self.current.extract = cx.now - self.phase_start;
                        self.phase_start = cx.now;
                        self.state = FaasState::Detect;
                        continue;
                    }
                    let n = EXTRACT_CHUNK_PAGES.min(region.pages - self.extract_cursor);
                    let touches: Vec<(PageId, Access)> = (0..n)
                        .map(|i| (region.page(self.extract_cursor + i), Access::Write))
                        .collect();
                    self.extract_cursor += n;
                    // Decompression CPU rides along: ~2 µs per page.
                    if self.extract_cursor.is_multiple_of(EXTRACT_CHUNK_PAGES * 4) {
                        self.state = FaasState::ExtractChunk;
                        // Charge CPU for the last 4 chunks.
                        let _ = touches;
                        return Op::Compute(SimTime::from_micros(2 * EXTRACT_CHUNK_PAGES * 4));
                    }
                    return Op::TouchBatch(touches);
                }
                FaasState::Detect => {
                    self.state = FaasState::Respond;
                    return Op::Compute(self.detect_cpu);
                }
                FaasState::Respond => {
                    self.current.detect = cx.now - self.phase_start;
                    self.phases.borrow_mut().push(self.current);
                    self.current = FaasPhases::default();
                    self.served += 1;
                    self.state = FaasState::Recv;
                    self.phase_start = cx.now;
                    return Op::NetSend {
                        conn: self.conn,
                        bytes: ByteSize::bytes(128),
                        payload: Vec::new(),
                    };
                }
            }
        }
    }

    fn label(&self) -> &str {
        "openlambda"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::AbClient;
    use comm::{LinkProfile, NodeId};
    use hypervisor::{ClientConfig, HypervisorProfile, Placement, VcpuId, VmBuilder, VmSim};

    /// Builds the paper's OpenLambda deployment: one worker per vCPU,
    /// one request per worker in flight.
    fn build_faas(
        vcpus: usize,
        profile: HypervisorProfile,
        spread: bool,
    ) -> (VmSim, Vec<Rc<RefCell<Vec<FaasPhases>>>>) {
        let mut b = VmBuilder::new(profile, vcpus.max(1)).with_net(NodeId::new(0));
        let mut all_phases = Vec::new();
        let mut targets = Vec::new();
        for v in 0..vcpus {
            let (worker, phases) = FaasWorker::new(v, 1);
            all_phases.push(phases);
            targets.push(VcpuId::from_usize(v));
            let placement = if spread {
                Placement::new(v as u32, 0)
            } else {
                Placement::new(0, 0)
            };
            b = b.vcpu(placement, Box::new(worker));
        }
        // One invocation per worker, archive-sized requests.
        // The picture database lives inside the data center, reachable
        // over the cluster fabric (the 13x download gap of Figure 13 is a
        // DSM-vs-bypass effect, not a wire effect).
        b = b.with_client(ClientConfig {
            node: NodeId::new(0),
            link: LinkProfile::infiniband_56g(),
            model: Box::new(AbClient::new(
                vcpus as u64,
                vcpus as u64,
                ByteSize::mib(4),
                targets,
            )),
        });
        (b.build(), all_phases)
    }

    #[test]
    fn pipeline_runs_all_phases() {
        let (mut sim, phases) = build_faas(2, HypervisorProfile::fragvisor(), true);
        let _ = sim.run();
        for p in &phases {
            let p = p.borrow();
            assert_eq!(p.len(), 1);
            assert!(p[0].extract > SimTime::ZERO);
            assert!(p[0].detect >= SimTime::from_millis(250));
        }
    }

    #[test]
    fn aggregate_beats_overcommit_on_detection() {
        let (mut agg, _) = build_faas(4, HypervisorProfile::fragvisor(), true);
        let t_agg = agg.run();
        let (mut over, _) = build_faas(4, HypervisorProfile::single_machine(), false);
        let t_over = over.run();
        let speedup = t_over.as_secs_f64() / t_agg.as_secs_f64();
        assert!(
            speedup > 1.8,
            "paper reports 1.9-3.26x overall; got {speedup:.2}"
        );
    }

    #[test]
    fn fragvisor_beats_giantvm_everywhere() {
        let (mut frag, _) = build_faas(4, HypervisorProfile::fragvisor(), true);
        let t_frag = frag.run();
        let (mut giant, _) = build_faas(4, HypervisorProfile::giantvm(), true);
        let t_giant = giant.run();
        let ratio = t_giant.as_secs_f64() / t_frag.as_secs_f64();
        assert!(ratio > 1.5, "paper reports 2.17-2.64x; got {ratio:.2}");
    }
}
