//! The LEMP stack model (§7.2, Figure 12).
//!
//! One NGINX worker runs on vCPU0 and one PHP worker on each remaining
//! vCPU (the artifact pins them with `taskset`). The client requests a
//! 2 MB page whose generation costs a configurable *processing time* —
//! the x-axis of Figure 12 (25–500 ms). NGINX and PHP talk over a
//! guest-local socket, which is the expensive part when they sit on
//! different physical machines: the paper's crossover at ~40 ms is the
//! point where remote compute wins over that communication tax.

use dsm::PageId;
use hypervisor::{GuestMsg, Op, ProgCtx, Program, VcpuId};
use sim_core::time::SimTime;
use sim_core::units::ByteSize;

/// LEMP deployment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LempConfig {
    /// PHP processing time per request (25–500 ms in the paper).
    pub processing: SimTime,
    /// Served page size (2 MB — the average web page size the paper cites).
    pub page_size: ByteSize,
    /// Number of vCPUs (1 NGINX + N−1 PHP workers).
    pub vcpus: usize,
}

impl LempConfig {
    /// The paper's configuration at a given processing time and vCPU count.
    pub fn paper(processing_ms: u64, vcpus: usize) -> Self {
        LempConfig {
            processing: SimTime::from_millis(processing_ms),
            page_size: ByteSize::mib(2),
            vcpus,
        }
    }

    /// The PHP worker vCPUs (everything but vCPU0).
    pub fn php_workers(&self) -> Vec<VcpuId> {
        (1..self.vcpus).map(VcpuId::from_usize).collect()
    }
}

/// The NGINX worker: accepts client requests, dispatches them to PHP
/// workers round-robin, and streams finished pages back to the client.
#[derive(Debug)]
pub struct NginxDispatcher {
    config: LempConfig,
    payload: Vec<PageId>,
    payload_region: Option<guest::memory::Region>,
    rr: usize,
    /// Continuation: a parsed request waiting to be forwarded.
    forward: Option<(u64, VcpuId)>,
    /// Continuation: a finished page waiting to be sent.
    respond: Option<u64>,
}

impl NginxDispatcher {
    /// Creates the dispatcher for `config`.
    pub fn new(config: LempConfig) -> Self {
        NginxDispatcher {
            config,
            payload: Vec::new(),
            payload_region: None,
            rr: 0,
            forward: None,
            respond: None,
        }
    }

    fn next_worker(&mut self) -> VcpuId {
        let workers = self.config.php_workers();
        let w = workers[self.rr % workers.len()];
        self.rr += 1;
        w
    }
}

impl Program for NginxDispatcher {
    fn next(&mut self, cx: &mut ProgCtx<'_>) -> Op {
        if self.payload_region.is_none() {
            let pages = self.config.page_size.pages_4k().max(1);
            let region = cx.alloc_region("nginx.page", pages);
            self.payload = region.iter().collect();
            self.payload_region = Some(region);
        }
        if let Some((conn, worker)) = self.forward.take() {
            // Forward the request over the guest-local socket.
            return Op::LocalSend {
                to: worker,
                tag: conn,
                bytes: 512,
            };
        }
        if let Some(conn) = self.respond.take() {
            return Op::NetSend {
                conn,
                bytes: self.config.page_size,
                payload: self.payload.clone(),
            };
        }
        match cx.delivered.take() {
            Some(GuestMsg::Net { conn, .. }) => {
                // A client request: parse, then forward to a PHP worker.
                let worker = self.next_worker();
                self.forward = Some((conn, worker));
                Op::Compute(SimTime::from_micros(150))
            }
            Some(GuestMsg::Local { tag, .. }) => {
                // A PHP worker finished page `tag`: send it out.
                self.respond = Some(tag);
                Op::Kernel(guest::KernelOp::Syscall)
            }
            None => Op::RecvAny,
        }
    }

    fn label(&self) -> &str {
        "nginx"
    }
}

/// A PHP-FPM worker: receives a request, burns the processing time doing
/// string manipulation over its working set, and returns the page.
#[derive(Debug)]
pub struct PhpWorker {
    config: LempConfig,
    /// Working set for the string-manipulation benchmark.
    workset: Option<guest::memory::Region>,
    /// Continuation: reply tag after processing.
    reply: Option<u64>,
    /// Remaining processing chunks for the current request.
    chunks_left: u64,
    touch_cursor: u64,
    worker_index: usize,
}

/// Processing is split into 5 ms chunks, each followed by working-set
/// touches and an occasional allocator call (PHP string churn).
const PHP_CHUNK: SimTime = SimTime::from_millis(5);

impl PhpWorker {
    /// Creates worker `worker_index` (1-based position among PHP workers).
    pub fn new(config: LempConfig, worker_index: usize) -> Self {
        PhpWorker {
            config,
            workset: None,
            reply: None,
            chunks_left: 0,
            touch_cursor: 0,
            worker_index,
        }
    }
}

impl Program for PhpWorker {
    fn next(&mut self, cx: &mut ProgCtx<'_>) -> Op {
        if self.workset.is_none() {
            self.workset = Some(cx.alloc_region(&format!("php{}.workset", self.worker_index), 64));
        }
        if self.chunks_left > 0 {
            self.chunks_left -= 1;
            if self.chunks_left == 0 {
                // Processing finished: reply to NGINX next.
                let tag = self.reply.expect("processing implies a request");
                self.reply = None;
                return Op::LocalSend {
                    to: VcpuId::new(0),
                    tag,
                    bytes: self.config.page_size.as_u64(),
                };
            }
            // String manipulation: mostly private working-set writes plus
            // an allocator call every few chunks.
            if self.chunks_left.is_multiple_of(4) {
                return Op::Kernel(guest::KernelOp::AllocPages(4));
            }
            let ws = self.workset.expect("workset allocated above");
            let page = ws.page(self.touch_cursor % ws.pages);
            self.touch_cursor += 1;
            let _ = page;
            return Op::Compute(PHP_CHUNK);
        }
        match cx.delivered.take() {
            Some(GuestMsg::Local { tag, .. }) => {
                self.reply = Some(tag);
                let chunks = (self.config.processing.as_nanos() / PHP_CHUNK.as_nanos()).max(1);
                // +1 because the final chunk triggers the reply.
                self.chunks_left = chunks + 1;
                // First action: the kernel wakes us (request read syscall).
                Op::Kernel(guest::KernelOp::Syscall)
            }
            _ => Op::LocalRecv,
        }
    }

    fn label(&self) -> &str {
        "php-fpm"
    }
}

/// The MySQL tier: a database worker on its own vCPU serving point
/// queries from the PHP workers (the "M" in the paper's LEMP stack).
#[derive(Debug)]
pub struct DbWorker {
    /// Query execution cost (index lookup + row fetch).
    query_cost: SimTime,
    /// Buffer-pool working set.
    pool: Option<guest::memory::Region>,
    /// Continuation: reply target after query execution.
    reply: Option<(VcpuId, u64)>,
    cursor: u64,
    run_query: bool,
}

impl Default for DbWorker {
    fn default() -> Self {
        Self::new()
    }
}

impl DbWorker {
    /// Creates a database worker with a 2 ms per-query cost.
    pub fn new() -> Self {
        DbWorker {
            query_cost: SimTime::from_millis(2),
            pool: None,
            reply: None,
            cursor: 0,
            run_query: false,
        }
    }
}

impl Program for DbWorker {
    fn next(&mut self, cx: &mut ProgCtx<'_>) -> Op {
        if self.pool.is_none() {
            self.pool = Some(cx.alloc_region("mysql.bufferpool", 256));
        }
        if self.run_query {
            self.run_query = false;
            return Op::Compute(self.query_cost);
        }
        if let Some((to, tag)) = self.reply.take() {
            // Query done: return an 8 KiB result set.
            return Op::LocalSend {
                to,
                tag,
                bytes: 8 * 1024,
            };
        }
        match cx.delivered.take() {
            Some(GuestMsg::Local { from, tag, .. }) => {
                self.reply = Some((from, tag));
                self.run_query = true;
                // Touch the buffer pool (private to the DB's node).
                let pool = self.pool.expect("allocated above");
                let page = pool.page(self.cursor % pool.pages);
                self.cursor += 1;
                Op::Touch {
                    page,
                    access: dsm::Access::Read,
                }
            }
            _ => Op::LocalRecv,
        }
    }

    fn label(&self) -> &str {
        "mysqld"
    }
}

/// A PHP worker that issues one database query per request before running
/// the processing benchmark (the full LEMP pipeline).
#[derive(Debug)]
pub struct PhpDbWorker {
    config: LempConfig,
    db: VcpuId,
    /// Requests accepted but not yet started.
    pending: std::collections::VecDeque<u64>,
    state: PhpDbState,
    workset: Option<guest::memory::Region>,
    worker_index: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhpDbState {
    Idle,
    /// Waiting for the DB result of request `tag`.
    AwaitDb(u64),
    /// Processing request `tag` with `left` chunks remaining.
    Work(u64, u64),
}

impl PhpDbWorker {
    /// Creates worker `worker_index` querying the DB on vCPU `db`.
    pub fn new(config: LempConfig, worker_index: usize, db: VcpuId) -> Self {
        PhpDbWorker {
            config,
            db,
            pending: std::collections::VecDeque::new(),
            state: PhpDbState::Idle,
            workset: None,
            worker_index,
        }
    }
}

impl Program for PhpDbWorker {
    fn next(&mut self, cx: &mut ProgCtx<'_>) -> Op {
        if self.workset.is_none() {
            self.workset = Some(cx.alloc_region(&format!("php{}.workset", self.worker_index), 64));
        }
        // Classify any delivered message first: new requests queue; the
        // DB result advances the in-flight request.
        if let Some(GuestMsg::Local { from, tag, .. }) = cx.delivered.take() {
            if from == self.db {
                debug_assert_eq!(self.state, PhpDbState::AwaitDb(tag));
                let chunks = (self.config.processing.as_nanos() / PHP_CHUNK.as_nanos()).max(1);
                self.state = PhpDbState::Work(tag, chunks);
            } else {
                self.pending.push_back(tag);
            }
        }
        match self.state {
            PhpDbState::Idle => match self.pending.pop_front() {
                Some(tag) => {
                    self.state = PhpDbState::AwaitDb(tag);
                    Op::LocalSend {
                        to: self.db,
                        tag,
                        bytes: 256,
                    }
                }
                None => Op::LocalRecv,
            },
            PhpDbState::AwaitDb(_) => Op::LocalRecv,
            PhpDbState::Work(tag, left) => {
                if left == 0 {
                    self.state = PhpDbState::Idle;
                    return Op::LocalSend {
                        to: VcpuId::new(0),
                        tag,
                        bytes: self.config.page_size.as_u64(),
                    };
                }
                self.state = PhpDbState::Work(tag, left - 1);
                if left % 4 == 0 {
                    Op::Kernel(guest::KernelOp::AllocPages(4))
                } else {
                    Op::Compute(PHP_CHUNK)
                }
            }
        }
    }

    fn label(&self) -> &str {
        "php-fpm+db"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::AbClient;
    use comm::{LinkProfile, NodeId};
    use hypervisor::{ClientConfig, HypervisorProfile, Placement, VmBuilder, VmSim};

    /// Builds the paper's LEMP deployment.
    pub fn build_lemp(
        config: LempConfig,
        profile: HypervisorProfile,
        spread: bool,
        requests: u64,
    ) -> VmSim {
        let nodes = config.vcpus;
        let mut b = VmBuilder::new(profile, nodes.max(1)).with_net(NodeId::new(0));
        b = b.vcpu(Placement::new(0, 0), Box::new(NginxDispatcher::new(config)));
        for (i, _w) in config.php_workers().iter().enumerate() {
            let placement = if spread {
                Placement::new((i + 1) as u32, 0)
            } else {
                Placement::new(0, 0)
            };
            b = b.vcpu(placement, Box::new(PhpWorker::new(config, i + 1)));
        }
        b = b.with_client(ClientConfig {
            node: NodeId::new(0),
            link: LinkProfile::ethernet_1g(),
            model: Box::new(AbClient::new(
                requests,
                10,
                sim_core::units::ByteSize::bytes(300),
                vec![hypervisor::VcpuId::new(0)],
            )),
        });
        b.build()
    }

    #[test]
    fn lemp_with_db_completes_requests() {
        // 4 vCPUs: nginx, two PHP workers, one DB. NginxDispatcher
        // round-robins over `php_workers()` = 1..vcpus, so it is
        // configured for 3 vCPUs while the DB rides as the 4th.
        let db = hypervisor::VcpuId::new(3);
        let dispatch_config = LempConfig::paper(50, 3);
        let mut b = VmBuilder::new(HypervisorProfile::fragvisor(), 4).with_net(NodeId::new(0));
        b = b.vcpu(
            Placement::new(0, 0),
            Box::new(NginxDispatcher::new(dispatch_config)),
        );
        for i in 1..3 {
            b = b.vcpu(
                Placement::new(i, 0),
                Box::new(PhpDbWorker::new(dispatch_config, i as usize, db)),
            );
        }
        b = b.vcpu(Placement::new(3, 0), Box::new(DbWorker::new()));
        b = b.with_client(ClientConfig {
            node: NodeId::new(0),
            link: LinkProfile::ethernet_1g(),
            model: Box::new(AbClient::new(
                10,
                4,
                sim_core::units::ByteSize::bytes(300),
                vec![hypervisor::VcpuId::new(0)],
            )),
        });
        let mut sim = b.build();
        let end = sim.run_client();
        assert!(end > SimTime::ZERO);
        assert_eq!(sim.world.stats.completed_requests, 10);
    }

    #[test]
    fn lemp_completes_requests() {
        let config = LempConfig::paper(50, 2);
        let mut sim = build_lemp(config, HypervisorProfile::fragvisor(), true, 10);
        let end = sim.run_client();
        assert!(end > SimTime::ZERO);
        assert_eq!(sim.world.stats.completed_requests, 10);
    }

    #[test]
    fn long_requests_favor_distribution() {
        // At 200ms processing, 4 distributed vCPUs beat 4 overcommitted.
        let config = LempConfig::paper(200, 4);
        let mut agg = build_lemp(config, HypervisorProfile::fragvisor(), true, 20);
        let t_agg = agg.run_client();
        let mut over = build_lemp(config, HypervisorProfile::single_machine(), false, 20);
        let t_over = over.run_client();
        let speedup = t_over.as_secs_f64() / t_agg.as_secs_f64();
        assert!(speedup > 1.5, "expected clear win, got {speedup:.2}");
    }

    #[test]
    fn short_requests_favor_consolidation() {
        // At 25ms processing the socket tax dominates: overcommit wins.
        let config = LempConfig::paper(25, 4);
        let mut agg = build_lemp(config, HypervisorProfile::fragvisor(), true, 20);
        let t_agg = agg.run_client();
        let mut over = build_lemp(config, HypervisorProfile::single_machine(), false, 20);
        let t_over = over.run_client();
        let ratio = t_over.as_secs_f64() / t_agg.as_secs_f64();
        assert!(
            ratio < 1.2,
            "aggregate should not win big at 25ms: {ratio:.2}"
        );
    }
}
