//! A tiny micro-benchmark harness exposing the subset of the `criterion`
//! API the workspace benches use (`Criterion::bench_function`,
//! `Criterion::benchmark_group`, `Throughput`, `Bencher::iter`/`iter_batched`,
//! `black_box`, `criterion_group!`, `criterion_main!`).
//!
//! The build environment is fully offline, so the real criterion crate cannot
//! be fetched; this shim keeps `cargo bench` working with the same bench
//! sources. It measures wall-clock time per iteration and prints a one-line
//! summary (min / mean, plus a per-iteration rate when the benchmark
//! declares a [`Throughput`]) per benchmark — enough to spot
//! order-of-magnitude regressions, without criterion's statistical
//! machinery.

use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work performed per benchmark iteration, used to report rates
/// (elements or bytes per second) alongside raw timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Each iteration processes this many logical elements (accesses,
    /// messages, pages...). Reported as `elem/s`.
    Elements(u64),
    /// Each iteration processes this many bytes. Reported as `B/s`.
    Bytes(u64),
}

impl Throughput {
    /// Renders the per-second rate implied by a mean iteration time.
    fn rate(self, mean_nanos: u128) -> String {
        if mean_nanos == 0 {
            return "inf".to_string();
        }
        let per_sec = |n: u64| n as f64 * 1e9 / mean_nanos as f64;
        match self {
            Throughput::Elements(n) => scaled(
                per_sec(n),
                &["elem/s", "Kelem/s", "Melem/s", "Gelem/s"],
                1000.0,
            ),
            Throughput::Bytes(n) => scaled(per_sec(n), &["B/s", "KiB/s", "MiB/s", "GiB/s"], 1024.0),
        }
    }
}

/// Scales `rate` through the given unit ladder (factor per rung).
fn scaled(mut rate: f64, units: &[&str], step: f64) -> String {
    let mut unit = units[0];
    for u in &units[1..] {
        if rate < step {
            break;
        }
        rate /= step;
        unit = u;
    }
    format!("{rate:.2} {unit}")
}

/// Benchmark registry + configuration (sample count).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group. Benchmarks registered on the group
    /// are prefixed `group/name` and may declare a [`Throughput`] so the
    /// report carries per-iteration rates.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one named benchmark: calls `f` with a [`Bencher`], then prints a
    /// one-line timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, &mut f);
        self
    }
}

/// A named group of benchmarks sharing a [`Throughput`] declaration
/// (criterion-compatible surface).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration of subsequent benchmarks;
    /// the report then includes an `elem/s` or `B/s` rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group (`group/name` in the report).
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.name);
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (no-op; exists for criterion API compatibility).
    pub fn finish(self) {}
}

/// Runs one benchmark and prints its report line.
fn run_one<F>(name: &str, samples: usize, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples,
        nanos: Vec::new(),
    };
    f(&mut b);
    if b.nanos.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    b.nanos.sort_unstable();
    let min = b.nanos[0];
    let mean = b.nanos.iter().sum::<u128>() / b.nanos.len() as u128;
    let rate = throughput.map_or_else(String::new, |t| format!("   {:>14}", t.rate(mean)));
    println!(
        "{name:<44} min {:>12} ns   mean {:>12} ns{rate}   ({} samples)",
        min,
        mean,
        b.nanos.len()
    );
}

/// Per-benchmark timing driver handed to the bench closure.
pub struct Bencher {
    samples: usize,
    nanos: Vec<u128>,
}

impl Bencher {
    /// Times `f`: one untimed warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.nanos.push(start.elapsed().as_nanos());
        }
    }

    /// Times `routine` on a fresh input from `setup` each sample; only the
    /// routine is timed. Use when the measured operation consumes its input
    /// (e.g. draining a directory) so rebuild cost stays out of the numbers.
    ///
    /// Unlike real criterion, the *drop* of the routine's output is also
    /// excluded from the timed window (criterion offers
    /// `iter_with_large_drop` for that; the shim folds it in here) — so a
    /// routine may return its large input to keep deallocation out of the
    /// measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = black_box(routine(input));
            self.nanos.push(start.elapsed().as_nanos());
            drop(out);
        }
    }
}

/// Batching hint (criterion API compatibility; the shim always runs one
/// setup per timed sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Input is cheap to hold; criterion would batch many per allocation.
    SmallInput,
    /// Input is large; criterion would batch few per allocation.
    LargeInput,
    /// One setup per iteration (exactly what the shim does anyway).
    PerIteration,
}

/// Declares a benchmark group function (criterion-compatible forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
    }

    criterion_group! {
        name = quick;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn group_runs() {
        quick();
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: 5,
            nanos: Vec::new(),
        };
        b.iter(|| black_box(42));
        assert_eq!(b.nanos.len(), 5);
    }

    #[test]
    fn iter_batched_times_routine_per_fresh_input() {
        let mut b = Bencher {
            samples: 4,
            nanos: Vec::new(),
        };
        let mut setups = 0;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u64; 16]
            },
            |v| v.into_iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        // One warm-up setup plus one per timed sample.
        assert_eq!(setups, 5);
        assert_eq!(b.nanos.len(), 4);
    }

    #[test]
    fn benchmark_group_runs_with_throughput() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(1000));
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // Warm-up + 2 samples.
        assert_eq!(runs, 3);
    }

    #[test]
    fn throughput_rates_scale_units() {
        // 1000 elements in 1 us = 1e9 elem/s = 1 Gelem/s.
        assert_eq!(Throughput::Elements(1000).rate(1_000), "1.00 Gelem/s");
        // 4096 bytes in 1 ms ~ 4 MB/s = 3.91 MiB/s.
        assert_eq!(Throughput::Bytes(4096).rate(1_000_000), "3.91 MiB/s");
        // Tiny rates stay in the base unit.
        assert_eq!(Throughput::Elements(1).rate(2_000_000_000), "0.50 elem/s");
        // Degenerate zero-mean guard.
        assert_eq!(Throughput::Elements(1).rate(0), "inf");
    }
}
