//! A tiny micro-benchmark harness exposing the subset of the `criterion`
//! API the workspace benches use (`Criterion::bench_function`, `Bencher::iter`,
//! `black_box`, `criterion_group!`, `criterion_main!`).
//!
//! The build environment is fully offline, so the real criterion crate cannot
//! be fetched; this shim keeps `cargo bench` working with the same bench
//! sources. It measures wall-clock time per iteration and prints a one-line
//! summary (min / mean) per benchmark — enough to spot order-of-magnitude
//! regressions, without criterion's statistical machinery.

use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark registry + configuration (sample count).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark: calls `f` with a [`Bencher`], then prints a
    /// one-line timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            nanos: Vec::new(),
        };
        f(&mut b);
        if b.nanos.is_empty() {
            println!("{name:<40} (no samples)");
            return self;
        }
        b.nanos.sort_unstable();
        let min = b.nanos[0];
        let mean = b.nanos.iter().sum::<u128>() / b.nanos.len() as u128;
        println!(
            "{name:<40} min {:>12} ns   mean {:>12} ns   ({} samples)",
            min,
            mean,
            b.nanos.len()
        );
        self
    }
}

/// Per-benchmark timing driver handed to the bench closure.
pub struct Bencher {
    samples: usize,
    nanos: Vec<u128>,
}

impl Bencher {
    /// Times `f`: one untimed warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.nanos.push(start.elapsed().as_nanos());
        }
    }
}

/// Declares a benchmark group function (criterion-compatible forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
    }

    criterion_group! {
        name = quick;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn group_runs() {
        quick();
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: 5,
            nanos: Vec::new(),
        };
        b.iter(|| black_box(42));
        assert_eq!(b.nanos.len(), 5);
    }
}
