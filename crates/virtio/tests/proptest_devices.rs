//! Property tests for the VirtIO device models.

use comm::NodeId;
use dsm::PageId;
use proptest::prelude::*;
use sim_core::units::ByteSize;
use virtio::{BlkRequest, DeviceConfig, IoPathMode, VcpuId};

fn modes() -> Vec<IoPathMode> {
    vec![
        IoPathMode::SharedRing,
        IoPathMode::Multiqueue,
        IoPathMode::MultiqueueBypass,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Submissions and completions balance: any interleaving that
    /// completes everything it submits never exhausts a queue
    /// permanently, and per-queue in-flight counts never go negative
    /// (the device would panic).
    #[test]
    fn queue_accounting_balances(
        mode_idx in 0usize..3,
        ops in proptest::collection::vec((0u32..4, 1u64..65_536), 1..300),
    ) {
        let mode = modes()[mode_idx];
        let mut dev = DeviceConfig::new(NodeId::new(0))
            .mode(mode)
            .queues(4)
            .rings_at(PageId::new(100))
            .build_net();
        let mut in_flight: Vec<(virtio::QueueId, usize)> = Vec::new();
        for (i, &(vcpu, bytes)) in ops.iter().enumerate() {
            // Alternate: even ops submit, odd ops complete the oldest.
            if i % 2 == 0 {
                match dev.plan_tx(
                    VcpuId::new(vcpu),
                    NodeId::new(vcpu % 2),
                    &[],
                    ByteSize::bytes(bytes),
                ) {
                    Ok((_, q)) => in_flight.push((q, i)),
                    Err(_) => prop_assert!(
                        in_flight.len() >= 256,
                        "queue full with only {} in flight",
                        in_flight.len()
                    ),
                }
            } else if let Some((q, _)) = in_flight.pop() {
                dev.complete(q);
            }
        }
        // Drain the rest.
        for (q, _) in in_flight {
            dev.complete(q);
        }
        // The device accepts again on every queue.
        for v in 0..4u32 {
            prop_assert!(dev
                .plan_tx(VcpuId::new(v), NodeId::new(0), &[], ByteSize::bytes(1))
                .is_ok());
        }
    }

    /// Bypass plans never touch guest pages; DSM plans always cover the
    /// payload pages on the device side.
    #[test]
    fn tx_plan_touches_match_mode(
        mode_idx in 0usize..3,
        vcpu in 0u32..4,
        payload in proptest::collection::vec(1_000u32..2_000, 0..16),
        bytes in 1u64..1_000_000,
    ) {
        let mode = modes()[mode_idx];
        let mut dev = DeviceConfig::new(NodeId::new(0))
            .mode(mode)
            .queues(4)
            .rings_at(PageId::new(100))
            .build_net();
        let pages: Vec<PageId> = payload.iter().map(|&p| PageId::new(p)).collect();
        let (plan, _) = dev
            .plan_tx(VcpuId::new(vcpu), NodeId::new(1), &pages, ByteSize::bytes(bytes))
            .expect("fresh queue");
        match mode {
            IoPathMode::MultiqueueBypass => {
                prop_assert_eq!(plan.touch_count(), 0);
                // The payload rides the kick.
                let kick = plan.notify.expect("remote submitter kicks");
                prop_assert!(kick.size.as_u64() > bytes);
            }
            _ => {
                for p in &pages {
                    prop_assert!(
                        plan.device_touches.iter().any(|t| t.page == *p),
                        "payload page {p} not fetched by the device"
                    );
                }
                // Ring work happens on both sides.
                prop_assert!(!plan.guest_touches.is_empty());
            }
        }
    }

    /// Block requests mirror direction: writes read guest buffers on the
    /// device node; reads write them and the guest consumes after.
    #[test]
    fn blk_direction_semantics(
        write in any::<bool>(),
        tmpfs in any::<bool>(),
        bytes in 1u64..10_000_000,
    ) {
        let mut dev = DeviceConfig::new(NodeId::new(0))
            .mode(IoPathMode::Multiqueue)
            .queues(2)
            .rings_at(PageId::new(50))
            .build_blk();
        let buffer = [PageId::new(2_000), PageId::new(2_001)];
        let (plan, _) = dev
            .plan_io(
                VcpuId::new(1),
                NodeId::new(1),
                BlkRequest {
                    bytes: ByteSize::bytes(bytes),
                    write,
                    tmpfs,
                },
                &buffer,
            )
            .expect("fresh queue");
        let dev_access = plan
            .device_touches
            .iter()
            .find(|t| t.page == buffer[0])
            .expect("buffer touched on device side");
        if write {
            prop_assert_eq!(dev_access.access, dsm::Access::Read);
        } else {
            prop_assert_eq!(dev_access.access, dsm::Access::Write);
            prop_assert!(plan
                .completion
                .guest_touches
                .iter()
                .any(|t| t.page == buffer[0] && t.access == dsm::Access::Read));
        }
        match plan.backend {
            virtio::BackendWork::Tmpfs { bytes: b } => {
                prop_assert!(tmpfs);
                prop_assert_eq!(b.as_u64(), bytes);
            }
            virtio::BackendWork::Disk { bytes: b, write: w } => {
                prop_assert!(!tmpfs);
                prop_assert_eq!(b.as_u64(), bytes);
                prop_assert_eq!(w, write);
            }
            other => prop_assert!(false, "unexpected backend {other:?}"),
        }
    }
}
