//! Paravirtualized (VirtIO/vhost) device models with delegation.
//!
//! In FragVisor, a virtual device is *owned* by the hypervisor instance on
//! the node with the physical hardware; guest software on any slice can use
//! it by **delegation** — the I/O request travels to the owning slice, which
//! talks to the real device. Three data-path variants are modelled,
//! matching §5.3/§6.3 of the paper:
//!
//! * [`IoPathMode::SharedRing`] — one TX/RX ring pair for the whole VM,
//!   kept coherent by the DSM. Every vCPU on every node touches the same
//!   ring pages: maximal DSM contention (this is the GiantVM-style
//!   baseline).
//! * [`IoPathMode::Multiqueue`] — one ring pair per vCPU, so ring pages
//!   ping-pong only between the submitting vCPU's node and the device node.
//! * [`IoPathMode::MultiqueueBypass`] — multiqueue plus **DSM-bypass**: the
//!   packet payload is piggybacked on the notification message through the
//!   communication layer, so the data path skips the DSM entirely.
//!
//! Like the `dsm` crate, everything here is a pure state machine: device
//! methods return an [`IoPlan`] describing page touches, messages and
//! backend work, and the hypervisor executor plays the plan out against the
//! DSM and the fabric.

#![warn(missing_docs)]

pub mod device;
pub mod plan;

pub use device::{BlkRequest, DeviceConfig, VirtioBlk, VirtioConsole, VirtioNet};
pub use plan::{BackendWork, IoPathMode, IoPlan, PageTouch};

sim_core::define_id!(
    /// Index of a virtqueue pair within one device.
    QueueId,
    "vq"
);

sim_core::define_id!(
    /// Identifier of a vCPU (shared convention with the hypervisor crate).
    VcpuId,
    "vcpu"
);
