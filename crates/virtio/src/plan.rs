//! I/O plan types: what an I/O operation requires from the substrates.

use comm::{Message, NodeId};
use dsm::{Access, PageId};
use sim_core::units::ByteSize;

/// Data-path configuration of a delegated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoPathMode {
    /// A single DSM-coherent ring pair shared by all vCPUs.
    SharedRing,
    /// Per-vCPU DSM-coherent ring pairs (virtio multiqueue).
    Multiqueue,
    /// Per-vCPU rings with the payload bypassing the DSM (piggybacked on
    /// the notification message).
    MultiqueueBypass,
}

impl IoPathMode {
    /// Whether this mode replicates ring pages through the DSM.
    pub fn uses_dsm_rings(self) -> bool {
        !matches!(self, IoPathMode::MultiqueueBypass)
    }
}

/// One page access a plan requires, attributed to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTouch {
    /// Node performing the access.
    pub node: NodeId,
    /// Page accessed.
    pub page: PageId,
    /// Load or store.
    pub access: Access,
}

/// Work performed by the device backend once the request reaches it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackendWork {
    /// No backend work (e.g. console echo).
    None,
    /// vhost-net transmit onto an external link.
    NetTx {
        /// Bytes leaving on the physical NIC.
        bytes: ByteSize,
    },
    /// vhost-net receive from an external link.
    NetRx {
        /// Bytes arriving from the physical NIC.
        bytes: ByteSize,
    },
    /// vhost-blk / SSD transfer.
    Disk {
        /// Bytes moved to/from the disk.
        bytes: ByteSize,
        /// True for writes.
        write: bool,
    },
    /// tmpfs-backed storage: pure memory movement, no physical device.
    Tmpfs {
        /// Bytes copied.
        bytes: ByteSize,
    },
}

/// Completion delivery: the interrupt and guest-side ring reads that let
/// the submitting vCPU observe the result.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionPlan {
    /// Interrupt forwarded to the submitting vCPU's node (None when the
    /// submitter is on the device node — the irqfd fires locally).
    pub irq_msg: Option<Message>,
    /// Used-ring touches on the submitter's node.
    pub guest_touches: Vec<PageTouch>,
}

/// Everything one I/O operation requires, in execution order:
/// guest-side ring writes → notification → device-side touches → backend
/// work → completion.
#[derive(Debug, Clone, PartialEq)]
pub struct IoPlan {
    /// Ring/descriptor writes on the submitting node, before the kick.
    pub guest_touches: Vec<PageTouch>,
    /// The kick (ioeventfd): None when submitter and device are co-located
    /// and the mode does not carry a payload.
    pub notify: Option<Message>,
    /// Ring reads / payload fetches / used-ring writes on the device node.
    pub device_touches: Vec<PageTouch>,
    /// Physical backend work.
    pub backend: BackendWork,
    /// Completion delivery.
    pub completion: CompletionPlan,
}

impl IoPlan {
    /// Total DSM page touches the plan implies (guest + device + completion).
    pub fn touch_count(&self) -> usize {
        self.guest_touches.len() + self.device_touches.len() + self.completion.guest_touches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_ring_usage() {
        assert!(IoPathMode::SharedRing.uses_dsm_rings());
        assert!(IoPathMode::Multiqueue.uses_dsm_rings());
        assert!(!IoPathMode::MultiqueueBypass.uses_dsm_rings());
    }

    #[test]
    fn touch_count_sums_phases() {
        let t = PageTouch {
            node: NodeId::new(0),
            page: PageId::new(1),
            access: Access::Write,
        };
        let plan = IoPlan {
            guest_touches: vec![t, t],
            notify: None,
            device_touches: vec![t],
            backend: BackendWork::None,
            completion: CompletionPlan {
                irq_msg: None,
                guest_touches: vec![t, t, t],
            },
        };
        assert_eq!(plan.touch_count(), 6);
    }
}
