//! VirtIO device models: virtio-net, virtio-blk, console.
//!
//! Each model owns its virtqueue bookkeeping (queue→vCPU mapping, in-flight
//! limits, ring page ids) and produces [`IoPlan`]s. Ring pages live in guest
//! pseudo-physical memory, so in the DSM-backed modes they are subject to
//! the coherence protocol like any other page — which is precisely the
//! overhead multiqueue and DSM-bypass exist to reduce.

use std::collections::BTreeMap;

use comm::{Message, MsgClass, NodeId};
use dsm::{Access, PageId};
use sim_core::stats::Meter;
use sim_core::units::ByteSize;

use crate::plan::{BackendWork, CompletionPlan, IoPathMode, IoPlan, PageTouch};
use crate::{QueueId, VcpuId};

/// Per-queue ring capacity (descriptors), matching kvmtool's default.
const QUEUE_DEPTH: u32 = 256;

/// Size of a kick / interrupt / protocol header message.
const CTRL_MSG: ByteSize = ByteSize::bytes(64);

/// Error returned when a virtqueue has no free descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "virtqueue full")
    }
}

impl std::error::Error for QueueFull {}

/// Shared configuration for every virtio device model: where the device
/// lives, how its queues are laid out, and which data-path mode it runs.
///
/// This is the single constructor surface for [`VirtioNet`], [`VirtioBlk`]
/// and [`VirtioConsole`]:
///
/// ```
/// # use virtio::{DeviceConfig, IoPathMode};
/// # use comm::NodeId;
/// # use dsm::PageId;
/// let net = DeviceConfig::new(NodeId::new(0))
///     .mode(IoPathMode::Multiqueue)
///     .queues(4)
///     .rings_at(PageId::new(100))
///     .build_net();
/// assert_eq!(net.home(), NodeId::new(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceConfig {
    home: NodeId,
    mode: IoPathMode,
    num_queues: usize,
    first_ring_page: PageId,
}

impl DeviceConfig {
    /// A single shared-ring queue pair homed on `home`, rings at page 0.
    pub fn new(home: NodeId) -> Self {
        DeviceConfig {
            home,
            mode: IoPathMode::SharedRing,
            num_queues: 1,
            first_ring_page: PageId::new(0),
        }
    }

    /// Sets the data-path mode.
    pub fn mode(mut self, mode: IoPathMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the number of queue pairs (collapsed to one in
    /// [`IoPathMode::SharedRing`]).
    pub fn queues(mut self, num_queues: usize) -> Self {
        self.num_queues = num_queues;
        self
    }

    /// Sets the first guest page the ring pages occupy.
    pub fn rings_at(mut self, first_ring_page: PageId) -> Self {
        self.first_ring_page = first_ring_page;
        self
    }

    /// Builds a [`VirtioNet`] from this configuration.
    pub fn build_net(self) -> VirtioNet {
        VirtioNet::new(self)
    }

    /// Builds a [`VirtioBlk`] from this configuration.
    pub fn build_blk(self) -> VirtioBlk {
        VirtioBlk::new(self)
    }

    /// Builds a [`VirtioConsole`] from this configuration (queue layout is
    /// ignored: the console is a single PTY worker on `home`).
    pub fn build_console(self) -> VirtioConsole {
        VirtioConsole::new(self)
    }
}

/// One TX/RX virtqueue pair.
#[derive(Debug, Clone)]
struct QueuePair {
    tx_ring: PageId,
    rx_ring: PageId,
    in_flight: u32,
}

/// Common queue plumbing shared by net and blk devices.
#[derive(Debug, Clone)]
struct QueueSet {
    home: NodeId,
    mode: IoPathMode,
    queues: Vec<QueuePair>,
    /// Explicit vCPU→queue pins (taskset-style); unpinned vCPUs hash.
    pins: BTreeMap<VcpuId, QueueId>,
}

impl QueueSet {
    fn new(config: DeviceConfig) -> Self {
        assert!(config.num_queues >= 1, "need at least one queue");
        let n = if config.mode == IoPathMode::SharedRing {
            1
        } else {
            config.num_queues
        };
        let queues = (0..n)
            .map(|i| QueuePair {
                tx_ring: PageId::from_usize(config.first_ring_page.index() + 2 * i),
                rx_ring: PageId::from_usize(config.first_ring_page.index() + 2 * i + 1),
                in_flight: 0,
            })
            .collect();
        QueueSet {
            home: config.home,
            mode: config.mode,
            queues,
            pins: BTreeMap::new(),
        }
    }

    fn queue_for(&self, vcpu: VcpuId) -> QueueId {
        if let Some(&q) = self.pins.get(&vcpu) {
            return q;
        }
        QueueId::from_usize(vcpu.index() % self.queues.len())
    }

    fn pin(&mut self, vcpu: VcpuId, queue: QueueId) {
        assert!(queue.index() < self.queues.len(), "queue out of range");
        self.pins.insert(vcpu, queue);
    }

    fn reserve(&mut self, q: QueueId) -> Result<(), QueueFull> {
        let pair = &mut self.queues[q.index()];
        if pair.in_flight >= QUEUE_DEPTH {
            return Err(QueueFull);
        }
        pair.in_flight += 1;
        Ok(())
    }

    fn complete(&mut self, q: QueueId) {
        let pair = &mut self.queues[q.index()];
        assert!(pair.in_flight > 0, "completion without submission");
        pair.in_flight -= 1;
    }

    /// All ring pages, for guest-memory registration.
    fn ring_pages(&self) -> Vec<PageId> {
        self.queues
            .iter()
            .flat_map(|q| [q.tx_ring, q.rx_ring])
            .collect()
    }

    fn kick(&self, src: NodeId, extra_payload: ByteSize) -> Option<Message> {
        if src == self.home && extra_payload == ByteSize::ZERO {
            // Local ioeventfd: no fabric message.
            return None;
        }
        Some(Message::new(
            src,
            self.home,
            CTRL_MSG + extra_payload,
            MsgClass::Io,
        ))
    }

    fn irq(&self, dst: NodeId, extra_payload: ByteSize) -> Option<Message> {
        if dst == self.home && extra_payload == ByteSize::ZERO {
            return None;
        }
        let class = if extra_payload == ByteSize::ZERO {
            MsgClass::Interrupt
        } else {
            MsgClass::Io
        };
        Some(Message::new(
            self.home,
            dst,
            CTRL_MSG + extra_payload,
            class,
        ))
    }
}

/// A paravirtualized network device (virtio-net over vhost-net).
#[derive(Debug, Clone)]
pub struct VirtioNet {
    qs: QueueSet,
    /// Transmitted traffic.
    pub tx: Meter,
    /// Received traffic.
    pub rx: Meter,
}

impl VirtioNet {
    /// Creates a net device from a [`DeviceConfig`] (see also
    /// [`DeviceConfig::build_net`]).
    pub fn new(config: DeviceConfig) -> Self {
        VirtioNet {
            qs: QueueSet::new(config),
            tx: Meter::new(),
            rx: Meter::new(),
        }
    }

    /// The node owning the physical NIC.
    pub fn home(&self) -> NodeId {
        self.qs.home
    }

    /// The data-path mode.
    pub fn mode(&self) -> IoPathMode {
        self.qs.mode
    }

    /// Ring pages to register in guest memory (class
    /// [`dsm::PageClass::DeviceRing`]).
    pub fn ring_pages(&self) -> Vec<PageId> {
        self.qs.ring_pages()
    }

    /// The queue a vCPU submits on.
    pub fn queue_for(&self, vcpu: VcpuId) -> QueueId {
        self.qs.queue_for(vcpu)
    }

    /// Pins a vCPU to a queue (the artifact's `taskset` pinning).
    pub fn pin(&mut self, vcpu: VcpuId, queue: QueueId) {
        self.qs.pin(vcpu, queue);
    }

    /// Marks a previously planned operation complete, freeing a descriptor.
    pub fn complete(&mut self, queue: QueueId) {
        self.qs.complete(queue);
    }

    /// Plans a packet transmission by `vcpu` running on `vcpu_node`.
    ///
    /// `payload_pages` are the guest pages holding the packet; in DSM modes
    /// the device node must fetch them through the coherence protocol.
    pub fn plan_tx(
        &mut self,
        vcpu: VcpuId,
        vcpu_node: NodeId,
        payload_pages: &[PageId],
        bytes: ByteSize,
    ) -> Result<(IoPlan, QueueId), QueueFull> {
        let q = self.qs.queue_for(vcpu);
        self.qs.reserve(q)?;
        self.tx.record(bytes.as_u64());
        let ring = self.qs.queues[q.index()].tx_ring;
        let home = self.qs.home;
        let plan = match self.qs.mode {
            IoPathMode::SharedRing | IoPathMode::Multiqueue => IoPlan {
                guest_touches: vec![PageTouch {
                    node: vcpu_node,
                    page: ring,
                    access: Access::Write,
                }],
                notify: self.qs.kick(vcpu_node, ByteSize::ZERO),
                device_touches: std::iter::once(PageTouch {
                    node: home,
                    page: ring,
                    access: Access::Read,
                })
                .chain(payload_pages.iter().map(|&p| PageTouch {
                    node: home,
                    page: p,
                    access: Access::Read,
                }))
                .chain(std::iter::once(PageTouch {
                    node: home,
                    page: ring,
                    access: Access::Write,
                }))
                .collect(),
                backend: BackendWork::NetTx { bytes },
                completion: CompletionPlan {
                    irq_msg: self.qs.irq(vcpu_node, ByteSize::ZERO),
                    guest_touches: vec![PageTouch {
                        node: vcpu_node,
                        page: ring,
                        access: Access::Write,
                    }],
                },
            },
            IoPathMode::MultiqueueBypass => IoPlan {
                // Rings are node-local (not DSM-replicated); the payload
                // rides on the notification itself.
                guest_touches: Vec::new(),
                notify: self.qs.kick(vcpu_node, bytes),
                device_touches: Vec::new(),
                backend: BackendWork::NetTx { bytes },
                completion: CompletionPlan {
                    irq_msg: self.qs.irq(vcpu_node, ByteSize::ZERO),
                    guest_touches: Vec::new(),
                },
            },
        };
        Ok((plan, q))
    }

    /// Plans delivery of a received packet to `vcpu` on `vcpu_node`.
    ///
    /// `payload_pages` are the guest buffer pages the packet lands in.
    pub fn plan_rx(
        &mut self,
        vcpu: VcpuId,
        vcpu_node: NodeId,
        payload_pages: &[PageId],
        bytes: ByteSize,
    ) -> Result<(IoPlan, QueueId), QueueFull> {
        let q = self.qs.queue_for(vcpu);
        self.qs.reserve(q)?;
        self.rx.record(bytes.as_u64());
        let ring = self.qs.queues[q.index()].rx_ring;
        let home = self.qs.home;
        let plan = match self.qs.mode {
            IoPathMode::SharedRing | IoPathMode::Multiqueue => IoPlan {
                guest_touches: Vec::new(),
                notify: None,
                // vhost writes the payload into guest memory and posts the
                // used ring on the device node...
                device_touches: payload_pages
                    .iter()
                    .map(|&p| PageTouch {
                        node: home,
                        page: p,
                        access: Access::Write,
                    })
                    .chain(std::iter::once(PageTouch {
                        node: home,
                        page: ring,
                        access: Access::Write,
                    }))
                    .collect(),
                backend: BackendWork::NetRx { bytes },
                completion: CompletionPlan {
                    irq_msg: self.qs.irq(vcpu_node, ByteSize::ZERO),
                    // ...and the guest reads both through the DSM.
                    guest_touches: std::iter::once(PageTouch {
                        node: vcpu_node,
                        page: ring,
                        access: Access::Read,
                    })
                    .chain(payload_pages.iter().map(|&p| PageTouch {
                        node: vcpu_node,
                        page: p,
                        access: Access::Read,
                    }))
                    .collect(),
                },
            },
            IoPathMode::MultiqueueBypass => IoPlan {
                guest_touches: Vec::new(),
                notify: None,
                device_touches: Vec::new(),
                backend: BackendWork::NetRx { bytes },
                completion: CompletionPlan {
                    // The payload rides on the interrupt message; the slice
                    // writes it into node-local guest pages.
                    irq_msg: self.qs.irq(vcpu_node, bytes),
                    guest_touches: payload_pages
                        .iter()
                        .map(|&p| PageTouch {
                            node: vcpu_node,
                            page: p,
                            access: Access::Write,
                        })
                        .collect(),
                },
            },
        };
        Ok((plan, q))
    }
}

/// A block I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlkRequest {
    /// Transfer size.
    pub bytes: ByteSize,
    /// True for a write (guest → storage).
    pub write: bool,
    /// Backed by tmpfs (ramdisk) rather than the physical SSD.
    pub tmpfs: bool,
}

/// A paravirtualized block device (virtio-blk over vhost-blk or tmpfs).
#[derive(Debug, Clone)]
pub struct VirtioBlk {
    qs: QueueSet,
    /// Read traffic.
    pub reads: Meter,
    /// Write traffic.
    pub writes: Meter,
}

impl VirtioBlk {
    /// Creates a block device from a [`DeviceConfig`] (see also
    /// [`DeviceConfig::build_blk`]).
    pub fn new(config: DeviceConfig) -> Self {
        VirtioBlk {
            qs: QueueSet::new(config),
            reads: Meter::new(),
            writes: Meter::new(),
        }
    }

    /// The node owning the physical disk.
    pub fn home(&self) -> NodeId {
        self.qs.home
    }

    /// Ring pages to register in guest memory.
    pub fn ring_pages(&self) -> Vec<PageId> {
        self.qs.ring_pages()
    }

    /// The queue a vCPU submits on.
    pub fn queue_for(&self, vcpu: VcpuId) -> QueueId {
        self.qs.queue_for(vcpu)
    }

    /// Marks a previously planned operation complete.
    pub fn complete(&mut self, queue: QueueId) {
        self.qs.complete(queue);
    }

    /// Plans a block request by `vcpu` on `vcpu_node` against guest buffer
    /// pages `buffer_pages`.
    pub fn plan_io(
        &mut self,
        vcpu: VcpuId,
        vcpu_node: NodeId,
        req: BlkRequest,
        buffer_pages: &[PageId],
    ) -> Result<(IoPlan, QueueId), QueueFull> {
        let q = self.qs.queue_for(vcpu);
        self.qs.reserve(q)?;
        if req.write {
            self.writes.record(req.bytes.as_u64());
        } else {
            self.reads.record(req.bytes.as_u64());
        }
        let ring = self.qs.queues[q.index()].tx_ring;
        let home = self.qs.home;
        let backend = if req.tmpfs {
            BackendWork::Tmpfs { bytes: req.bytes }
        } else {
            BackendWork::Disk {
                bytes: req.bytes,
                write: req.write,
            }
        };
        let plan = match self.qs.mode {
            IoPathMode::SharedRing | IoPathMode::Multiqueue => {
                // Device-side buffer movement: reads fetch guest buffers
                // for a write; writes fill guest buffers for a read.
                let buffer_access = if req.write {
                    Access::Read
                } else {
                    Access::Write
                };
                IoPlan {
                    guest_touches: vec![PageTouch {
                        node: vcpu_node,
                        page: ring,
                        access: Access::Write,
                    }],
                    notify: self.qs.kick(vcpu_node, ByteSize::ZERO),
                    device_touches: std::iter::once(PageTouch {
                        node: home,
                        page: ring,
                        access: Access::Read,
                    })
                    .chain(buffer_pages.iter().map(|&p| PageTouch {
                        node: home,
                        page: p,
                        access: buffer_access,
                    }))
                    .chain(std::iter::once(PageTouch {
                        node: home,
                        page: ring,
                        access: Access::Write,
                    }))
                    .collect(),
                    backend,
                    completion: CompletionPlan {
                        irq_msg: self.qs.irq(vcpu_node, ByteSize::ZERO),
                        guest_touches: if req.write {
                            vec![PageTouch {
                                node: vcpu_node,
                                page: ring,
                                access: Access::Write,
                            }]
                        } else {
                            // The guest consumes the data it asked for.
                            std::iter::once(PageTouch {
                                node: vcpu_node,
                                page: ring,
                                access: Access::Write,
                            })
                            .chain(buffer_pages.iter().map(|&p| PageTouch {
                                node: vcpu_node,
                                page: p,
                                access: Access::Read,
                            }))
                            .collect()
                        },
                    },
                }
            }
            IoPathMode::MultiqueueBypass => {
                let (kick_payload, irq_payload) = if req.write {
                    (req.bytes, ByteSize::ZERO)
                } else {
                    (ByteSize::ZERO, req.bytes)
                };
                IoPlan {
                    guest_touches: Vec::new(),
                    notify: self.qs.kick(vcpu_node, kick_payload),
                    device_touches: Vec::new(),
                    backend,
                    completion: CompletionPlan {
                        irq_msg: self.qs.irq(vcpu_node, irq_payload),
                        guest_touches: if req.write {
                            Vec::new()
                        } else {
                            buffer_pages
                                .iter()
                                .map(|&p| PageTouch {
                                    node: vcpu_node,
                                    page: p,
                                    access: Access::Write,
                                })
                                .collect()
                        },
                    },
                }
            }
        };
        Ok((plan, q))
    }
}

/// A minimal serial console: guest writes become messages to the single
/// pseudo-terminal worker on the bootstrap node (§6.3 "Serial Console").
#[derive(Debug, Clone)]
pub struct VirtioConsole {
    /// Node running the PTY worker thread.
    pub home: NodeId,
    /// Output traffic.
    pub out: Meter,
}

impl VirtioConsole {
    /// Creates a console homed on the config's bootstrap node (see also
    /// [`DeviceConfig::build_console`]).
    pub fn new(config: DeviceConfig) -> Self {
        VirtioConsole {
            home: config.home,
            out: Meter::new(),
        }
    }

    /// Plans a console write from `node`.
    pub fn plan_write(&mut self, node: NodeId, bytes: ByteSize) -> Option<Message> {
        self.out.record(bytes.as_u64());
        if node == self.home {
            None
        } else {
            Some(Message::new(
                node,
                self.home,
                bytes + CTRL_MSG,
                MsgClass::Io,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn v(i: u32) -> VcpuId {
        VcpuId::new(i)
    }

    fn pages(ids: &[u32]) -> Vec<PageId> {
        ids.iter().map(|&i| PageId::new(i)).collect()
    }

    #[test]
    fn shared_ring_collapses_to_one_queue() {
        let d = DeviceConfig::new(n(0))
            .mode(IoPathMode::SharedRing)
            .queues(4)
            .rings_at(PageId::new(100))
            .build_net();
        assert_eq!(d.ring_pages().len(), 2);
        assert_eq!(d.queue_for(v(0)), d.queue_for(v(3)));
    }

    #[test]
    fn multiqueue_spreads_vcpus() {
        let d = DeviceConfig::new(n(0))
            .mode(IoPathMode::Multiqueue)
            .queues(4)
            .rings_at(PageId::new(100))
            .build_net();
        assert_eq!(d.ring_pages().len(), 8);
        let qs: Vec<QueueId> = (0..4).map(|i| d.queue_for(v(i))).collect();
        let mut uniq = qs.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 4);
    }

    #[test]
    fn pinning_overrides_hash() {
        let mut d = DeviceConfig::new(n(0))
            .mode(IoPathMode::Multiqueue)
            .queues(4)
            .rings_at(PageId::new(100))
            .build_net();
        d.pin(v(3), QueueId::new(0));
        assert_eq!(d.queue_for(v(3)), QueueId::new(0));
    }

    #[test]
    fn local_tx_has_no_kick_message() {
        let mut d = DeviceConfig::new(n(0))
            .mode(IoPathMode::Multiqueue)
            .queues(2)
            .rings_at(PageId::new(100))
            .build_net();
        let (plan, _) = d
            .plan_tx(v(0), n(0), &pages(&[1, 2]), ByteSize::kib(8))
            .unwrap();
        assert!(plan.notify.is_none());
        assert!(plan.completion.irq_msg.is_none());
        // Ring and payload touches still happen, all on node 0.
        assert!(plan.touch_count() > 0);
        assert!(plan
            .guest_touches
            .iter()
            .chain(&plan.device_touches)
            .all(|t| t.node == n(0)));
    }

    #[test]
    fn delegated_tx_crosses_the_fabric() {
        let mut d = DeviceConfig::new(n(0))
            .mode(IoPathMode::Multiqueue)
            .queues(2)
            .rings_at(PageId::new(100))
            .build_net();
        let (plan, _) = d
            .plan_tx(v(1), n(1), &pages(&[1, 2]), ByteSize::kib(8))
            .unwrap();
        let kick = plan.notify.expect("remote kick");
        assert_eq!((kick.src, kick.dst), (n(1), n(0)));
        // Device-side touches run on the NIC's home node: payload pages are
        // fetched through the DSM.
        assert!(plan.device_touches.iter().all(|t| t.node == n(0)));
        assert!(plan
            .device_touches
            .iter()
            .any(|t| t.page == PageId::new(1) && t.access == Access::Read));
        let irq = plan.completion.irq_msg.expect("remote irq");
        assert_eq!((irq.src, irq.dst), (n(0), n(1)));
        assert_eq!(
            plan.backend,
            BackendWork::NetTx {
                bytes: ByteSize::kib(8)
            }
        );
    }

    #[test]
    fn bypass_tx_skips_dsm_and_carries_payload() {
        let mut d = DeviceConfig::new(n(0))
            .mode(IoPathMode::MultiqueueBypass)
            .queues(2)
            .rings_at(PageId::new(100))
            .build_net();
        let (plan, _) = d
            .plan_tx(v(1), n(1), &pages(&[1, 2]), ByteSize::kib(8))
            .unwrap();
        assert_eq!(plan.touch_count(), 0);
        let kick = plan.notify.expect("kick with payload");
        assert!(kick.size.as_u64() > ByteSize::kib(8).as_u64());
    }

    #[test]
    fn bypass_rx_payload_rides_the_interrupt() {
        let mut d = DeviceConfig::new(n(0))
            .mode(IoPathMode::MultiqueueBypass)
            .queues(2)
            .rings_at(PageId::new(100))
            .build_net();
        let (plan, _) = d
            .plan_rx(v(1), n(1), &pages(&[5]), ByteSize::kib(4))
            .unwrap();
        let irq = plan.completion.irq_msg.expect("irq with payload");
        assert!(irq.size.as_u64() > ByteSize::kib(4).as_u64());
        assert!(plan.device_touches.is_empty());
        // The slice writes the payload into local guest pages.
        assert_eq!(plan.completion.guest_touches.len(), 1);
        assert_eq!(plan.completion.guest_touches[0].node, n(1));
    }

    #[test]
    fn dsm_rx_moves_payload_through_protocol() {
        let mut d = DeviceConfig::new(n(0))
            .mode(IoPathMode::Multiqueue)
            .queues(2)
            .rings_at(PageId::new(100))
            .build_net();
        let (plan, _) = d
            .plan_rx(v(1), n(1), &pages(&[5, 6]), ByteSize::kib(8))
            .unwrap();
        // Device writes payload+ring on home; guest reads them on node 1.
        assert_eq!(plan.device_touches.len(), 3);
        assert_eq!(plan.completion.guest_touches.len(), 3);
        assert!(plan.completion.guest_touches.iter().all(|t| t.node == n(1)));
    }

    #[test]
    fn queue_backpressure() {
        let mut d = DeviceConfig::new(n(0))
            .mode(IoPathMode::Multiqueue)
            .queues(1)
            .rings_at(PageId::new(100))
            .build_net();
        let mut queue = None;
        for _ in 0..QUEUE_DEPTH {
            let (_, q) = d.plan_tx(v(0), n(0), &[], ByteSize::kib(1)).unwrap();
            queue = Some(q);
        }
        assert_eq!(
            d.plan_tx(v(0), n(0), &[], ByteSize::kib(1)).unwrap_err(),
            QueueFull
        );
        d.complete(queue.unwrap());
        assert!(d.plan_tx(v(0), n(0), &[], ByteSize::kib(1)).is_ok());
    }

    #[test]
    fn blk_read_fills_guest_buffers() {
        let mut d = DeviceConfig::new(n(0))
            .mode(IoPathMode::Multiqueue)
            .queues(2)
            .rings_at(PageId::new(200))
            .build_blk();
        let req = BlkRequest {
            bytes: ByteSize::kib(8),
            write: false,
            tmpfs: false,
        };
        let (plan, _) = d.plan_io(v(1), n(1), req, &pages(&[10, 11])).unwrap();
        // Device writes the buffers; guest then reads them remotely.
        assert!(plan
            .device_touches
            .iter()
            .any(|t| t.page == PageId::new(10) && t.access == Access::Write));
        assert!(plan
            .completion
            .guest_touches
            .iter()
            .any(|t| t.page == PageId::new(10) && t.access == Access::Read));
        assert_eq!(
            plan.backend,
            BackendWork::Disk {
                bytes: ByteSize::kib(8),
                write: false
            }
        );
    }

    #[test]
    fn blk_write_reads_guest_buffers_on_device_node() {
        let mut d = DeviceConfig::new(n(0))
            .mode(IoPathMode::Multiqueue)
            .queues(2)
            .rings_at(PageId::new(200))
            .build_blk();
        let req = BlkRequest {
            bytes: ByteSize::kib(4),
            write: true,
            tmpfs: true,
        };
        let (plan, _) = d.plan_io(v(1), n(1), req, &pages(&[10])).unwrap();
        assert!(plan
            .device_touches
            .iter()
            .any(|t| t.page == PageId::new(10) && t.access == Access::Read));
        assert_eq!(
            plan.backend,
            BackendWork::Tmpfs {
                bytes: ByteSize::kib(4)
            }
        );
    }

    #[test]
    fn blk_bypass_write_carries_payload_on_kick() {
        let mut d = DeviceConfig::new(n(0))
            .mode(IoPathMode::MultiqueueBypass)
            .queues(2)
            .rings_at(PageId::new(200))
            .build_blk();
        let req = BlkRequest {
            bytes: ByteSize::kib(16),
            write: true,
            tmpfs: false,
        };
        let (plan, _) = d.plan_io(v(1), n(1), req, &pages(&[10])).unwrap();
        assert!(plan.notify.unwrap().size.as_u64() > ByteSize::kib(16).as_u64());
        assert_eq!(plan.touch_count(), 0);
    }

    #[test]
    fn console_local_write_is_free() {
        let mut c = DeviceConfig::new(n(0)).build_console();
        assert!(c.plan_write(n(0), ByteSize::bytes(80)).is_none());
        let m = c.plan_write(n(2), ByteSize::bytes(80)).unwrap();
        assert_eq!((m.src, m.dst), (n(2), n(0)));
        assert_eq!(c.out.events, 2);
    }
}
