//! Fragmentation metrics.
//!
//! "Fragmented" capacity is free capacity that cannot host a standard VM
//! request on any single machine. The paper motivates Aggregate VMs with
//! cluster studies reporting ~17 % of physical resources wasted per day to
//! fragmentation; FragBFF's policies are scored with the metrics computed
//! here.

use crate::machine::{Cluster, ResourceRequest};

/// A snapshot of cluster fragmentation relative to a reference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentationReport {
    /// Total free pCPUs in the cluster.
    pub free_cpus: u32,
    /// Free pCPUs on machines that cannot fit the reference request —
    /// i.e. CPUs that are stranded for that request size.
    pub stranded_cpus: u32,
    /// Number of machines with at least one free pCPU but not enough for
    /// the reference request.
    pub fragmented_machines: u32,
    /// Largest single-machine free-CPU block.
    pub largest_free_block: u32,
    /// Fraction of free CPUs that are stranded (0 when nothing is free).
    pub stranded_fraction: f64,
}

impl FragmentationReport {
    /// Computes the report for `cluster` against `reference` (typically the
    /// modal VM size — the paper uses 2–4 vCPU VMs).
    pub fn compute(cluster: &Cluster, reference: ResourceRequest) -> Self {
        let mut free_cpus = 0u32;
        let mut stranded = 0u32;
        let mut fragmented_machines = 0u32;
        let mut largest = 0u32;
        for (_, m) in cluster.machines() {
            let f = m.free_cpus();
            free_cpus += f;
            largest = largest.max(f);
            if !m.fits(reference) && f > 0 {
                stranded += f;
                fragmented_machines += 1;
            }
        }
        FragmentationReport {
            free_cpus,
            stranded_cpus: stranded,
            fragmented_machines,
            largest_free_block: largest,
            stranded_fraction: if free_cpus == 0 {
                0.0
            } else {
                f64::from(stranded) / f64::from(free_cpus)
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;
    use crate::VmId;
    use comm::NodeId;
    use sim_core::units::ByteSize;

    fn req(cpus: u32) -> ResourceRequest {
        ResourceRequest::new(cpus, ByteSize::gib(1))
    }

    #[test]
    fn empty_cluster_has_no_fragmentation() {
        let c = Cluster::homogeneous(3, MachineSpec::testbed());
        let r = FragmentationReport::compute(&c, req(4));
        assert_eq!(r.free_cpus, 48);
        assert_eq!(r.stranded_cpus, 0);
        assert_eq!(r.fragmented_machines, 0);
        assert_eq!(r.largest_free_block, 16);
        assert_eq!(r.stranded_fraction, 0.0);
    }

    #[test]
    fn stranded_capacity_detected() {
        let mut c = Cluster::homogeneous(2, MachineSpec::testbed());
        // Leave 2 free CPUs on node0 and 3 on node1: a 4-CPU request fits
        // nowhere even though 5 CPUs are free in aggregate.
        c.allocate(NodeId::new(0), VmId::new(1), req(14)).unwrap();
        c.allocate(NodeId::new(1), VmId::new(2), req(13)).unwrap();
        let r = FragmentationReport::compute(&c, req(4));
        assert_eq!(r.free_cpus, 5);
        assert_eq!(r.stranded_cpus, 5);
        assert_eq!(r.fragmented_machines, 2);
        assert_eq!(r.largest_free_block, 3);
        assert!((r.stranded_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partially_stranded() {
        let mut c = Cluster::homogeneous(2, MachineSpec::testbed());
        // node0 has 8 free (fits), node1 has 2 free (stranded).
        c.allocate(NodeId::new(0), VmId::new(1), req(8)).unwrap();
        c.allocate(NodeId::new(1), VmId::new(2), req(14)).unwrap();
        let r = FragmentationReport::compute(&c, req(4));
        assert_eq!(r.free_cpus, 10);
        assert_eq!(r.stranded_cpus, 2);
        assert_eq!(r.fragmented_machines, 1);
        assert!((r.stranded_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ram_can_strand_cpus_too() {
        let mut c = Cluster::homogeneous(1, MachineSpec::testbed());
        // Plenty of CPUs free but RAM nearly exhausted.
        c.allocate(
            NodeId::new(0),
            VmId::new(1),
            ResourceRequest::new(2, ByteSize::gib(31)),
        )
        .unwrap();
        let r = FragmentationReport::compute(&c, ResourceRequest::new(4, ByteSize::gib(4)));
        assert_eq!(r.stranded_cpus, 14);
    }
}
