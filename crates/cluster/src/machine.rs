//! Machines and the cluster allocator.

use std::collections::BTreeMap;

use comm::NodeId;
use sim_core::units::ByteSize;

use crate::VmId;

/// A class of physical device a machine can host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeviceKind {
    /// Network interface card.
    Nic,
    /// Block storage (the testbed's SATA SSD).
    Disk,
    /// An accelerator (GPU/TPU); modelled for completeness of the design,
    /// the prototype (like the paper's) does not exercise it.
    Accelerator,
}

/// Static description of one server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSpec {
    /// Number of pCPUs available to VMs.
    pub cpus: u32,
    /// Amount of RAM available to VMs.
    pub ram: ByteSize,
    /// Devices physically attached to this machine.
    pub devices: Vec<DeviceKind>,
}

impl MachineSpec {
    /// The paper's testbed server: Xeon E5-2620 v4 (8 cores / 16 threads),
    /// 32 GiB RAM, one NIC, one SSD. The evaluation pins vCPUs to cores,
    /// so we expose 16 schedulable pCPUs.
    pub fn testbed() -> Self {
        MachineSpec {
            cpus: 16,
            ram: ByteSize::gib(32),
            devices: vec![DeviceKind::Nic, DeviceKind::Disk],
        }
    }

    /// The Figure-14 configuration: 12 pCPUs usable by VMs (4 reserved for
    /// management tasks).
    pub fn fig14() -> Self {
        MachineSpec {
            cpus: 12,
            ram: ByteSize::gib(32),
            devices: vec![DeviceKind::Nic, DeviceKind::Disk],
        }
    }
}

/// A resource request: what one VM (or one slice of it) needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceRequest {
    /// Number of vCPUs (each pinned to one pCPU).
    pub cpus: u32,
    /// Guest RAM.
    pub ram: ByteSize,
}

impl ResourceRequest {
    /// Convenience constructor.
    pub fn new(cpus: u32, ram: ByteSize) -> Self {
        ResourceRequest { cpus, ram }
    }
}

/// One server and its current allocations.
#[derive(Debug, Clone)]
pub struct Machine {
    spec: MachineSpec,
    /// Per-VM allocations on this machine.
    allocs: BTreeMap<VmId, ResourceRequest>,
}

impl Machine {
    /// Creates an empty machine.
    pub fn new(spec: MachineSpec) -> Self {
        Machine {
            spec,
            allocs: BTreeMap::new(),
        }
    }

    /// The machine's static spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// pCPUs currently allocated.
    pub fn used_cpus(&self) -> u32 {
        self.allocs.values().map(|r| r.cpus).sum()
    }

    /// RAM currently allocated.
    pub fn used_ram(&self) -> ByteSize {
        ByteSize::bytes(self.allocs.values().map(|r| r.ram.as_u64()).sum())
    }

    /// Free pCPUs.
    pub fn free_cpus(&self) -> u32 {
        self.spec.cpus - self.used_cpus()
    }

    /// Free RAM.
    pub fn free_ram(&self) -> ByteSize {
        self.spec.ram - self.used_ram()
    }

    /// Whether `req` fits in the free capacity.
    pub fn fits(&self, req: ResourceRequest) -> bool {
        self.free_cpus() >= req.cpus && self.free_ram().as_u64() >= req.ram.as_u64()
    }

    /// Whether this machine hosts a device of the given kind.
    pub fn has_device(&self, kind: DeviceKind) -> bool {
        self.spec.devices.contains(&kind)
    }

    /// The VMs with an allocation here, in id order.
    pub fn resident_vms(&self) -> impl Iterator<Item = (VmId, ResourceRequest)> + '_ {
        self.allocs.iter().map(|(&vm, &r)| (vm, r))
    }

    /// The allocation of a specific VM on this machine, if any.
    pub fn allocation_of(&self, vm: VmId) -> Option<ResourceRequest> {
        self.allocs.get(&vm).copied()
    }
}

/// The cluster: a set of machines plus an allocation ledger.
#[derive(Debug, Clone)]
pub struct Cluster {
    machines: Vec<Machine>,
}

/// Errors returned by the cluster allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The requested machine lacks capacity for the request.
    Insufficient {
        /// The machine that could not satisfy the request.
        node: NodeId,
    },
    /// The VM has no allocation on the given machine.
    NotAllocated {
        /// The machine that holds no allocation for the VM.
        node: NodeId,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Insufficient { node } => {
                write!(f, "insufficient capacity on {node}")
            }
            AllocError::NotAllocated { node } => {
                write!(f, "no allocation on {node}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

impl Cluster {
    /// Creates a cluster of `n` identical machines.
    pub fn homogeneous(n: usize, spec: MachineSpec) -> Self {
        Cluster {
            machines: (0..n).map(|_| Machine::new(spec.clone())).collect(),
        }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Returns true if the cluster has no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Immutable access to one machine.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn machine(&self, node: NodeId) -> &Machine {
        &self.machines[node.index()]
    }

    /// Iterates machines in node order.
    pub fn machines(&self) -> impl Iterator<Item = (NodeId, &Machine)> {
        self.machines
            .iter()
            .enumerate()
            .map(|(i, m)| (NodeId::from_usize(i), m))
    }

    /// Allocates `req` for `vm` on `node`; requests for a VM that already
    /// has an allocation there are *added* to it (used when a slice grows).
    pub fn allocate(
        &mut self,
        node: NodeId,
        vm: VmId,
        req: ResourceRequest,
    ) -> Result<(), AllocError> {
        let m = &mut self.machines[node.index()];
        if m.free_cpus() < req.cpus || m.free_ram().as_u64() < req.ram.as_u64() {
            return Err(AllocError::Insufficient { node });
        }
        let entry = m
            .allocs
            .entry(vm)
            .or_insert(ResourceRequest::new(0, ByteSize::ZERO));
        entry.cpus += req.cpus;
        entry.ram += req.ram;
        Ok(())
    }

    /// Releases part of a VM's allocation on `node`.
    ///
    /// Releasing everything removes the ledger entry.
    pub fn release(
        &mut self,
        node: NodeId,
        vm: VmId,
        req: ResourceRequest,
    ) -> Result<(), AllocError> {
        let m = &mut self.machines[node.index()];
        let Some(entry) = m.allocs.get_mut(&vm) else {
            return Err(AllocError::NotAllocated { node });
        };
        if entry.cpus < req.cpus || entry.ram.as_u64() < req.ram.as_u64() {
            return Err(AllocError::NotAllocated { node });
        }
        entry.cpus -= req.cpus;
        entry.ram = entry.ram - req.ram;
        if entry.cpus == 0 && entry.ram.as_u64() == 0 {
            m.allocs.remove(&vm);
        }
        Ok(())
    }

    /// Releases every allocation of `vm` across the cluster; returns the
    /// nodes that held a piece of it.
    pub fn release_vm(&mut self, vm: VmId) -> Vec<NodeId> {
        let mut nodes = Vec::new();
        for (i, m) in self.machines.iter_mut().enumerate() {
            if m.allocs.remove(&vm).is_some() {
                nodes.push(NodeId::from_usize(i));
            }
        }
        nodes
    }

    /// Moves part of a VM's allocation from one node to another (the
    /// allocator-side effect of a slice migration).
    pub fn migrate(
        &mut self,
        vm: VmId,
        from: NodeId,
        to: NodeId,
        req: ResourceRequest,
    ) -> Result<(), AllocError> {
        // Validate the source first so a failed destination leaves state
        // untouched.
        let src = &self.machines[from.index()];
        let Some(have) = src.allocs.get(&vm) else {
            return Err(AllocError::NotAllocated { node: from });
        };
        if have.cpus < req.cpus || have.ram.as_u64() < req.ram.as_u64() {
            return Err(AllocError::NotAllocated { node: from });
        }
        self.allocate(to, vm, req)?;
        self.release(from, vm, req)
            .expect("validated source allocation");
        Ok(())
    }

    /// Total free pCPUs across the cluster.
    pub fn total_free_cpus(&self) -> u32 {
        self.machines.iter().map(Machine::free_cpus).sum()
    }

    /// The nodes on which a VM currently holds resources, in node order.
    pub fn nodes_of(&self, vm: VmId) -> Vec<NodeId> {
        self.machines()
            .filter(|(_, m)| m.allocation_of(vm).is_some())
            .map(|(n, _)| n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_req(cpus: u32) -> ResourceRequest {
        ResourceRequest::new(cpus, ByteSize::gib(1))
    }

    #[test]
    fn allocate_and_release() {
        let mut c = Cluster::homogeneous(2, MachineSpec::testbed());
        let vm = VmId::new(1);
        c.allocate(NodeId::new(0), vm, small_req(4)).unwrap();
        assert_eq!(c.machine(NodeId::new(0)).free_cpus(), 12);
        assert_eq!(c.machine(NodeId::new(0)).used_ram(), ByteSize::gib(1));
        c.release(NodeId::new(0), vm, small_req(4)).unwrap();
        assert_eq!(c.machine(NodeId::new(0)).free_cpus(), 16);
        assert!(c.machine(NodeId::new(0)).allocation_of(vm).is_none());
    }

    #[test]
    fn over_allocation_rejected() {
        let mut c = Cluster::homogeneous(1, MachineSpec::testbed());
        let vm = VmId::new(1);
        let r = c.allocate(NodeId::new(0), vm, small_req(17));
        assert_eq!(
            r,
            Err(AllocError::Insufficient {
                node: NodeId::new(0)
            })
        );
        // RAM limits too.
        let r = c.allocate(
            NodeId::new(0),
            vm,
            ResourceRequest::new(1, ByteSize::gib(33)),
        );
        assert!(r.is_err());
    }

    #[test]
    fn allocations_accumulate_per_vm() {
        let mut c = Cluster::homogeneous(1, MachineSpec::testbed());
        let vm = VmId::new(3);
        c.allocate(NodeId::new(0), vm, small_req(2)).unwrap();
        c.allocate(NodeId::new(0), vm, small_req(2)).unwrap();
        assert_eq!(
            c.machine(NodeId::new(0)).allocation_of(vm),
            Some(ResourceRequest::new(4, ByteSize::gib(2)))
        );
    }

    #[test]
    fn release_more_than_held_fails() {
        let mut c = Cluster::homogeneous(1, MachineSpec::testbed());
        let vm = VmId::new(1);
        c.allocate(NodeId::new(0), vm, small_req(2)).unwrap();
        assert!(c.release(NodeId::new(0), vm, small_req(3)).is_err());
        // State unchanged.
        assert_eq!(c.machine(NodeId::new(0)).free_cpus(), 14);
    }

    #[test]
    fn migrate_moves_allocation() {
        let mut c = Cluster::homogeneous(2, MachineSpec::testbed());
        let vm = VmId::new(1);
        c.allocate(NodeId::new(0), vm, small_req(4)).unwrap();
        c.migrate(vm, NodeId::new(0), NodeId::new(1), small_req(2))
            .unwrap();
        assert_eq!(c.machine(NodeId::new(0)).allocation_of(vm).unwrap().cpus, 2);
        assert_eq!(c.machine(NodeId::new(1)).allocation_of(vm).unwrap().cpus, 2);
        assert_eq!(c.nodes_of(vm), vec![NodeId::new(0), NodeId::new(1)]);
    }

    #[test]
    fn migrate_to_full_node_leaves_state_untouched() {
        let mut c = Cluster::homogeneous(2, MachineSpec::testbed());
        let a = VmId::new(1);
        let b = VmId::new(2);
        c.allocate(NodeId::new(1), b, small_req(16)).unwrap();
        c.allocate(NodeId::new(0), a, small_req(4)).unwrap();
        assert!(c
            .migrate(a, NodeId::new(0), NodeId::new(1), small_req(2))
            .is_err());
        assert_eq!(c.machine(NodeId::new(0)).allocation_of(a).unwrap().cpus, 4);
    }

    #[test]
    fn release_vm_clears_everywhere() {
        let mut c = Cluster::homogeneous(3, MachineSpec::testbed());
        let vm = VmId::new(9);
        c.allocate(NodeId::new(0), vm, small_req(1)).unwrap();
        c.allocate(NodeId::new(2), vm, small_req(1)).unwrap();
        let nodes = c.release_vm(vm);
        assert_eq!(nodes, vec![NodeId::new(0), NodeId::new(2)]);
        assert_eq!(c.total_free_cpus(), 48);
    }

    #[test]
    fn device_inventory() {
        let c = Cluster::homogeneous(1, MachineSpec::testbed());
        assert!(c.machine(NodeId::new(0)).has_device(DeviceKind::Nic));
        assert!(c.machine(NodeId::new(0)).has_device(DeviceKind::Disk));
        assert!(!c
            .machine(NodeId::new(0))
            .has_device(DeviceKind::Accelerator));
    }
}
