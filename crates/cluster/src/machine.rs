//! Machines and the cluster allocator.
//!
//! Besides the per-machine allocation ledger, [`Cluster`] maintains two
//! incremental indices sized for data-center simulations (thousands of
//! nodes, tens of thousands of VM events):
//!
//! * a **free-CPU bucket index** — for each possible free-CPU count, the
//!   set of `(free RAM, node)` pairs currently at that count — so
//!   placement queries ([`Cluster::best_fit`], [`Cluster::first_fit`],
//!   [`Cluster::worst_fit`]) and fragment enumeration
//!   ([`Cluster::fragments_ascending`]) touch only candidate machines
//!   instead of scanning the whole cluster per arrival, and
//! * a **VM → nodes ledger** — which machines hold a piece of each VM —
//!   so [`Cluster::nodes_of`] and consolidation are O(nodes of that VM),
//!   not O(cluster).
//!
//! Both indices are updated on every `allocate`/`release`/`migrate` and
//! can be audited against a fresh scan with [`Cluster::check_invariants`].

use std::collections::{BTreeMap, BTreeSet};

use comm::NodeId;
use sim_core::units::ByteSize;

use crate::VmId;

/// A class of physical device a machine can host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeviceKind {
    /// Network interface card.
    Nic,
    /// Block storage (the testbed's SATA SSD).
    Disk,
    /// An accelerator (GPU/TPU); modelled for completeness of the design,
    /// the prototype (like the paper's) does not exercise it.
    Accelerator,
}

/// Static description of one server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSpec {
    /// Number of pCPUs available to VMs.
    pub cpus: u32,
    /// Amount of RAM available to VMs.
    pub ram: ByteSize,
    /// Devices physically attached to this machine.
    pub devices: Vec<DeviceKind>,
}

impl MachineSpec {
    /// The paper's testbed server: Xeon E5-2620 v4 (8 cores / 16 threads),
    /// 32 GiB RAM, one NIC, one SSD. The evaluation pins vCPUs to cores,
    /// so we expose 16 schedulable pCPUs.
    pub fn testbed() -> Self {
        MachineSpec {
            cpus: 16,
            ram: ByteSize::gib(32),
            devices: vec![DeviceKind::Nic, DeviceKind::Disk],
        }
    }

    /// The Figure-14 configuration: 12 pCPUs usable by VMs (4 reserved for
    /// management tasks).
    pub fn fig14() -> Self {
        MachineSpec {
            cpus: 12,
            ram: ByteSize::gib(32),
            devices: vec![DeviceKind::Nic, DeviceKind::Disk],
        }
    }
}

/// A resource request: what one VM (or one slice of it) needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceRequest {
    /// Number of vCPUs (each pinned to one pCPU).
    pub cpus: u32,
    /// Guest RAM.
    pub ram: ByteSize,
}

impl ResourceRequest {
    /// Convenience constructor.
    pub fn new(cpus: u32, ram: ByteSize) -> Self {
        ResourceRequest { cpus, ram }
    }
}

/// One server and its current allocations.
#[derive(Debug, Clone)]
pub struct Machine {
    spec: MachineSpec,
    /// Per-VM allocations on this machine.
    allocs: BTreeMap<VmId, ResourceRequest>,
    /// Incrementally-maintained totals, so capacity queries are O(1)
    /// instead of a sum over `allocs` (the inner loop of every placement).
    used_cpus: u32,
    used_ram: u64,
}

impl Machine {
    /// Creates an empty machine.
    pub fn new(spec: MachineSpec) -> Self {
        Machine {
            spec,
            allocs: BTreeMap::new(),
            used_cpus: 0,
            used_ram: 0,
        }
    }

    /// The machine's static spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// pCPUs currently allocated.
    pub fn used_cpus(&self) -> u32 {
        self.used_cpus
    }

    /// RAM currently allocated.
    pub fn used_ram(&self) -> ByteSize {
        ByteSize::bytes(self.used_ram)
    }

    /// Free pCPUs.
    pub fn free_cpus(&self) -> u32 {
        self.spec.cpus - self.used_cpus
    }

    /// Free RAM.
    pub fn free_ram(&self) -> ByteSize {
        self.spec.ram - ByteSize::bytes(self.used_ram)
    }

    /// Whether `req` fits in the free capacity.
    pub fn fits(&self, req: ResourceRequest) -> bool {
        self.free_cpus() >= req.cpus && self.free_ram().as_u64() >= req.ram.as_u64()
    }

    /// Whether this machine hosts a device of the given kind.
    pub fn has_device(&self, kind: DeviceKind) -> bool {
        self.spec.devices.contains(&kind)
    }

    /// The VMs with an allocation here, in id order.
    pub fn resident_vms(&self) -> impl Iterator<Item = (VmId, ResourceRequest)> + '_ {
        self.allocs.iter().map(|(&vm, &r)| (vm, r))
    }

    /// The allocation of a specific VM on this machine, if any.
    pub fn allocation_of(&self, vm: VmId) -> Option<ResourceRequest> {
        self.allocs.get(&vm).copied()
    }

    /// Adds `req` to the VM's allocation (capacity already validated).
    fn add(&mut self, vm: VmId, req: ResourceRequest) {
        let entry = self
            .allocs
            .entry(vm)
            .or_insert(ResourceRequest::new(0, ByteSize::ZERO));
        entry.cpus += req.cpus;
        entry.ram += req.ram;
        self.used_cpus += req.cpus;
        self.used_ram += req.ram.as_u64();
    }

    /// Subtracts `req` from the VM's allocation; returns `true` when the
    /// ledger entry disappeared (the VM no longer lives here).
    fn sub(&mut self, vm: VmId, req: ResourceRequest) -> bool {
        let entry = self.allocs.get_mut(&vm).expect("validated allocation");
        entry.cpus -= req.cpus;
        entry.ram = entry.ram - req.ram;
        self.used_cpus -= req.cpus;
        self.used_ram -= req.ram.as_u64();
        if entry.cpus == 0 && entry.ram.as_u64() == 0 {
            self.allocs.remove(&vm);
            true
        } else {
            false
        }
    }

    /// Removes the VM's whole allocation, returning it.
    fn take(&mut self, vm: VmId) -> Option<ResourceRequest> {
        let r = self.allocs.remove(&vm)?;
        self.used_cpus -= r.cpus;
        self.used_ram -= r.ram.as_u64();
        Some(r)
    }
}

/// The cluster: a set of machines plus an allocation ledger.
#[derive(Debug, Clone)]
pub struct Cluster {
    machines: Vec<Machine>,
    /// Bucket index: `by_free[f]` holds `(free RAM bytes, node index)` for
    /// every machine with exactly `f` free pCPUs.
    by_free: Vec<BTreeSet<(u64, u32)>>,
    /// Ledger: the machines on which each VM currently holds resources.
    vm_nodes: BTreeMap<VmId, BTreeSet<u32>>,
    /// Cluster-wide free pCPUs, maintained incrementally.
    total_free: u64,
    /// Monotone change clock: bumped by every mutation, with the new value
    /// recorded in `node_touched` for the mutated node. Lets callers prove
    /// "nothing on these nodes changed since clock `t`" in O(nodes asked)
    /// — the consolidation scan of the data-center simulator rides this.
    clock: u64,
    /// Per-node last-mutation clock values.
    node_touched: Vec<u64>,
}

/// Errors returned by the cluster allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The requested machine lacks capacity for the request.
    Insufficient {
        /// The machine that could not satisfy the request.
        node: NodeId,
    },
    /// The VM has no allocation on the given machine.
    NotAllocated {
        /// The machine that holds no allocation for the VM.
        node: NodeId,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Insufficient { node } => {
                write!(f, "insufficient capacity on {node}")
            }
            AllocError::NotAllocated { node } => {
                write!(f, "no allocation on {node}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

impl Cluster {
    /// Creates a cluster of `n` identical machines.
    pub fn homogeneous(n: usize, spec: MachineSpec) -> Self {
        let machines: Vec<Machine> = (0..n).map(|_| Machine::new(spec.clone())).collect();
        let max_cpus = machines.iter().map(|m| m.spec.cpus).max().unwrap_or(0);
        let mut by_free: Vec<BTreeSet<(u64, u32)>> =
            (0..=max_cpus as usize).map(|_| BTreeSet::new()).collect();
        for (i, m) in machines.iter().enumerate() {
            by_free[m.free_cpus() as usize].insert((m.free_ram().as_u64(), i as u32));
        }
        let total_free = machines.iter().map(|m| u64::from(m.free_cpus())).sum();
        let node_touched = vec![0; n];
        Cluster {
            machines,
            by_free,
            vm_nodes: BTreeMap::new(),
            total_free,
            clock: 0,
            node_touched,
        }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Returns true if the cluster has no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Immutable access to one machine.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn machine(&self, node: NodeId) -> &Machine {
        &self.machines[node.index()]
    }

    /// Iterates machines in node order.
    pub fn machines(&self) -> impl Iterator<Item = (NodeId, &Machine)> {
        self.machines
            .iter()
            .enumerate()
            .map(|(i, m)| (NodeId::from_usize(i), m))
    }

    /// Removes node `i` from the bucket index (before a mutation).
    fn unindex(&mut self, i: usize) {
        let m = &self.machines[i];
        let removed =
            self.by_free[m.free_cpus() as usize].remove(&(m.free_ram().as_u64(), i as u32));
        debug_assert!(removed, "node {i} missing from free-CPU index");
        self.total_free -= u64::from(m.free_cpus());
    }

    /// Re-inserts node `i` into the bucket index (after a mutation) and
    /// stamps the change clock.
    fn reindex(&mut self, i: usize) {
        let m = &self.machines[i];
        self.by_free[m.free_cpus() as usize].insert((m.free_ram().as_u64(), i as u32));
        self.total_free += u64::from(m.free_cpus());
        self.clock += 1;
        self.node_touched[i] = self.clock;
    }

    /// Allocates `req` for `vm` on `node`; requests for a VM that already
    /// has an allocation there are *added* to it (used when a slice grows).
    pub fn allocate(
        &mut self,
        node: NodeId,
        vm: VmId,
        req: ResourceRequest,
    ) -> Result<(), AllocError> {
        let i = node.index();
        let m = &mut self.machines[i];
        if m.free_cpus() < req.cpus || m.free_ram().as_u64() < req.ram.as_u64() {
            return Err(AllocError::Insufficient { node });
        }
        self.unindex(i);
        self.machines[i].add(vm, req);
        self.reindex(i);
        self.vm_nodes.entry(vm).or_default().insert(i as u32);
        Ok(())
    }

    /// Releases part of a VM's allocation on `node`.
    ///
    /// Releasing everything removes the ledger entry.
    pub fn release(
        &mut self,
        node: NodeId,
        vm: VmId,
        req: ResourceRequest,
    ) -> Result<(), AllocError> {
        let i = node.index();
        let Some(entry) = self.machines[i].allocs.get(&vm) else {
            return Err(AllocError::NotAllocated { node });
        };
        if entry.cpus < req.cpus || entry.ram.as_u64() < req.ram.as_u64() {
            return Err(AllocError::NotAllocated { node });
        }
        self.unindex(i);
        let gone = self.machines[i].sub(vm, req);
        self.reindex(i);
        if gone {
            if let Some(nodes) = self.vm_nodes.get_mut(&vm) {
                nodes.remove(&(i as u32));
                if nodes.is_empty() {
                    self.vm_nodes.remove(&vm);
                }
            }
        }
        Ok(())
    }

    /// Releases every allocation of `vm` across the cluster; returns the
    /// nodes that held a piece of it.
    pub fn release_vm(&mut self, vm: VmId) -> Vec<NodeId> {
        let Some(held) = self.vm_nodes.remove(&vm) else {
            return Vec::new();
        };
        let mut nodes = Vec::with_capacity(held.len());
        for i in held {
            let i = i as usize;
            self.unindex(i);
            self.machines[i]
                .take(vm)
                .expect("ledger said VM lives here");
            self.reindex(i);
            nodes.push(NodeId::from_usize(i));
        }
        nodes
    }

    /// Moves part of a VM's allocation from one node to another (the
    /// allocator-side effect of a slice migration).
    pub fn migrate(
        &mut self,
        vm: VmId,
        from: NodeId,
        to: NodeId,
        req: ResourceRequest,
    ) -> Result<(), AllocError> {
        // Validate the source first so a failed destination leaves state
        // untouched.
        let src = &self.machines[from.index()];
        let Some(have) = src.allocs.get(&vm) else {
            return Err(AllocError::NotAllocated { node: from });
        };
        if have.cpus < req.cpus || have.ram.as_u64() < req.ram.as_u64() {
            return Err(AllocError::NotAllocated { node: from });
        }
        self.allocate(to, vm, req)?;
        self.release(from, vm, req)
            .expect("validated source allocation");
        Ok(())
    }

    /// Total free pCPUs across the cluster (O(1), maintained incrementally).
    pub fn total_free_cpus(&self) -> u32 {
        u32::try_from(self.total_free).unwrap_or(u32::MAX)
    }

    /// The nodes on which a VM currently holds resources, in node order.
    pub fn nodes_of(&self, vm: VmId) -> Vec<NodeId> {
        self.vm_nodes
            .get(&vm)
            .map(|nodes| nodes.iter().map(|&i| NodeId::new(i)).collect())
            .unwrap_or_default()
    }

    /// Like [`Cluster::nodes_of`], but iterates without allocating.
    pub fn home_nodes(&self, vm: VmId) -> impl Iterator<Item = NodeId> + '_ {
        self.vm_nodes
            .get(&vm)
            .into_iter()
            .flat_map(|nodes| nodes.iter().map(|&i| NodeId::new(i)))
    }

    /// The current value of the change clock (see [`Cluster::node_touched`]).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The change-clock value of the last mutation that touched `node`.
    /// `node_touched(n) <= t` proves node `n` is bit-for-bit unchanged
    /// since the moment [`Cluster::clock`] read `t`.
    pub fn node_touched(&self, node: NodeId) -> u64 {
        self.node_touched[node.index()]
    }

    /// Best-fit placement query: among machines that fit `req`, the one
    /// with the least free CPUs left over, then least free RAM, then
    /// lowest node id. O(buckets scanned), not O(cluster).
    pub fn best_fit(&self, req: ResourceRequest) -> Option<NodeId> {
        let ram = req.ram.as_u64();
        for bucket in self.by_free.iter().skip(req.cpus as usize) {
            if let Some(&(_, i)) = bucket.range((ram, 0)..).next() {
                return Some(NodeId::new(i));
            }
        }
        None
    }

    /// First-fit placement query: the lowest-numbered machine that fits
    /// `req`.
    pub fn first_fit(&self, req: ResourceRequest) -> Option<NodeId> {
        let ram = req.ram.as_u64();
        let mut best: Option<u32> = None;
        for bucket in self.by_free.iter().skip(req.cpus as usize) {
            for &(_, i) in bucket.range((ram, 0)..) {
                if best.is_none_or(|b| i < b) {
                    best = Some(i);
                }
            }
        }
        best.map(NodeId::new)
    }

    /// Worst-fit placement query: among machines that fit `req`, the one
    /// with the most free CPUs, then least free RAM, then lowest node id.
    pub fn worst_fit(&self, req: ResourceRequest) -> Option<NodeId> {
        let ram = req.ram.as_u64();
        for bucket in self.by_free.iter().skip(req.cpus as usize).rev() {
            if let Some(&(_, i)) = bucket.range((ram, 0)..).next() {
                return Some(NodeId::new(i));
            }
        }
        None
    }

    /// Machines with at least one free pCPU, smallest free block first
    /// (then least free RAM, then node id) — the MinFragmentation
    /// harvesting order. Lazily walks the bucket index, so callers that
    /// stop early (enough fragments gathered) never touch the rest of the
    /// cluster.
    pub fn fragments_ascending(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.by_free
            .iter()
            .skip(1)
            .flat_map(|b| b.iter().map(|&(_, i)| NodeId::new(i)))
    }

    /// Machines with at least one free pCPU, largest free block first —
    /// the MinNodes harvesting order.
    pub fn fragments_descending(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.by_free
            .iter()
            .skip(1)
            .rev()
            .flat_map(|b| b.iter().map(|&(_, i)| NodeId::new(i)))
    }

    /// Audits every incremental structure against a fresh scan: per-machine
    /// totals vs their allocation maps, the free-CPU bucket index, the
    /// VM → nodes ledger, and the cluster-wide free counter.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first inconsistency found.
    pub fn check_invariants(&self) {
        let mut total_free = 0u64;
        for (i, m) in self.machines.iter().enumerate() {
            let cpus: u32 = m.allocs.values().map(|r| r.cpus).sum();
            let ram: u64 = m.allocs.values().map(|r| r.ram.as_u64()).sum();
            assert_eq!(m.used_cpus, cpus, "node {i}: stale used_cpus counter");
            assert_eq!(m.used_ram, ram, "node {i}: stale used_ram counter");
            assert!(
                m.used_cpus <= m.spec.cpus && m.used_ram <= m.spec.ram.as_u64(),
                "node {i}: over-allocated ({}/{} cpus, {}/{} bytes)",
                m.used_cpus,
                m.spec.cpus,
                m.used_ram,
                m.spec.ram.as_u64()
            );
            total_free += u64::from(m.free_cpus());
            let key = (m.free_ram().as_u64(), i as u32);
            assert!(
                self.by_free[m.free_cpus() as usize].contains(&key),
                "node {i}: missing from free-CPU bucket {}",
                m.free_cpus()
            );
            for &vm in m.allocs.keys() {
                assert!(
                    self.vm_nodes
                        .get(&vm)
                        .is_some_and(|ns| ns.contains(&(i as u32))),
                    "ledger missing {vm} on node {i}"
                );
            }
        }
        assert_eq!(self.total_free, total_free, "stale total_free counter");
        let indexed: usize = self.by_free.iter().map(BTreeSet::len).sum();
        assert_eq!(indexed, self.machines.len(), "free-CPU index size drift");
        for (vm, nodes) in &self.vm_nodes {
            assert!(!nodes.is_empty(), "empty ledger entry for {vm}");
            for &i in nodes {
                assert!(
                    self.machines[i as usize].allocs.contains_key(vm),
                    "ledger claims {vm} on node {i} but machine disagrees"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_req(cpus: u32) -> ResourceRequest {
        ResourceRequest::new(cpus, ByteSize::gib(1))
    }

    #[test]
    fn allocate_and_release() {
        let mut c = Cluster::homogeneous(2, MachineSpec::testbed());
        let vm = VmId::new(1);
        c.allocate(NodeId::new(0), vm, small_req(4)).unwrap();
        assert_eq!(c.machine(NodeId::new(0)).free_cpus(), 12);
        assert_eq!(c.machine(NodeId::new(0)).used_ram(), ByteSize::gib(1));
        c.check_invariants();
        c.release(NodeId::new(0), vm, small_req(4)).unwrap();
        assert_eq!(c.machine(NodeId::new(0)).free_cpus(), 16);
        assert!(c.machine(NodeId::new(0)).allocation_of(vm).is_none());
        c.check_invariants();
    }

    #[test]
    fn over_allocation_rejected() {
        let mut c = Cluster::homogeneous(1, MachineSpec::testbed());
        let vm = VmId::new(1);
        let r = c.allocate(NodeId::new(0), vm, small_req(17));
        assert_eq!(
            r,
            Err(AllocError::Insufficient {
                node: NodeId::new(0)
            })
        );
        // RAM limits too.
        let r = c.allocate(
            NodeId::new(0),
            vm,
            ResourceRequest::new(1, ByteSize::gib(33)),
        );
        assert!(r.is_err());
        c.check_invariants();
    }

    #[test]
    fn allocations_accumulate_per_vm() {
        let mut c = Cluster::homogeneous(1, MachineSpec::testbed());
        let vm = VmId::new(3);
        c.allocate(NodeId::new(0), vm, small_req(2)).unwrap();
        c.allocate(NodeId::new(0), vm, small_req(2)).unwrap();
        assert_eq!(
            c.machine(NodeId::new(0)).allocation_of(vm),
            Some(ResourceRequest::new(4, ByteSize::gib(2)))
        );
        c.check_invariants();
    }

    #[test]
    fn release_more_than_held_fails() {
        let mut c = Cluster::homogeneous(1, MachineSpec::testbed());
        let vm = VmId::new(1);
        c.allocate(NodeId::new(0), vm, small_req(2)).unwrap();
        assert!(c.release(NodeId::new(0), vm, small_req(3)).is_err());
        // State unchanged.
        assert_eq!(c.machine(NodeId::new(0)).free_cpus(), 14);
        c.check_invariants();
    }

    #[test]
    fn migrate_moves_allocation() {
        let mut c = Cluster::homogeneous(2, MachineSpec::testbed());
        let vm = VmId::new(1);
        c.allocate(NodeId::new(0), vm, small_req(4)).unwrap();
        c.migrate(vm, NodeId::new(0), NodeId::new(1), small_req(2))
            .unwrap();
        assert_eq!(c.machine(NodeId::new(0)).allocation_of(vm).unwrap().cpus, 2);
        assert_eq!(c.machine(NodeId::new(1)).allocation_of(vm).unwrap().cpus, 2);
        assert_eq!(c.nodes_of(vm), vec![NodeId::new(0), NodeId::new(1)]);
        c.check_invariants();
    }

    #[test]
    fn migrate_to_full_node_leaves_state_untouched() {
        let mut c = Cluster::homogeneous(2, MachineSpec::testbed());
        let a = VmId::new(1);
        let b = VmId::new(2);
        c.allocate(NodeId::new(1), b, small_req(16)).unwrap();
        c.allocate(NodeId::new(0), a, small_req(4)).unwrap();
        assert!(c
            .migrate(a, NodeId::new(0), NodeId::new(1), small_req(2))
            .is_err());
        assert_eq!(c.machine(NodeId::new(0)).allocation_of(a).unwrap().cpus, 4);
        c.check_invariants();
    }

    #[test]
    fn release_vm_clears_everywhere() {
        let mut c = Cluster::homogeneous(3, MachineSpec::testbed());
        let vm = VmId::new(9);
        c.allocate(NodeId::new(0), vm, small_req(1)).unwrap();
        c.allocate(NodeId::new(2), vm, small_req(1)).unwrap();
        let nodes = c.release_vm(vm);
        assert_eq!(nodes, vec![NodeId::new(0), NodeId::new(2)]);
        assert_eq!(c.total_free_cpus(), 48);
        assert!(c.nodes_of(vm).is_empty());
        c.check_invariants();
    }

    #[test]
    fn device_inventory() {
        let c = Cluster::homogeneous(1, MachineSpec::testbed());
        assert!(c.machine(NodeId::new(0)).has_device(DeviceKind::Nic));
        assert!(c.machine(NodeId::new(0)).has_device(DeviceKind::Disk));
        assert!(!c
            .machine(NodeId::new(0))
            .has_device(DeviceKind::Accelerator));
    }

    #[test]
    fn best_fit_matches_naive_scan() {
        let mut c = Cluster::homogeneous(4, MachineSpec::testbed());
        c.allocate(NodeId::new(0), VmId::new(90), small_req(6))
            .unwrap();
        c.allocate(NodeId::new(1), VmId::new(91), small_req(12))
            .unwrap();
        c.allocate(NodeId::new(3), VmId::new(92), small_req(12))
            .unwrap();
        for cpus in 1..=16 {
            let req = small_req(cpus);
            let naive = c
                .machines()
                .filter(|(_, m)| m.fits(req))
                .min_by_key(|(n, m)| (m.free_cpus() - req.cpus, m.free_ram().as_u64(), n.0))
                .map(|(n, _)| n);
            assert_eq!(c.best_fit(req), naive, "cpus = {cpus}");
        }
    }

    #[test]
    fn first_fit_picks_lowest_id() {
        let mut c = Cluster::homogeneous(3, MachineSpec::testbed());
        c.allocate(NodeId::new(0), VmId::new(90), small_req(14))
            .unwrap();
        // node0 has 2 free, node1/node2 are empty: first fit of 4 → node1.
        assert_eq!(c.first_fit(small_req(4)), Some(NodeId::new(1)));
        assert_eq!(c.first_fit(small_req(2)), Some(NodeId::new(0)));
        assert_eq!(c.first_fit(small_req(17)), None);
    }

    #[test]
    fn worst_fit_picks_most_free() {
        let mut c = Cluster::homogeneous(3, MachineSpec::testbed());
        c.allocate(NodeId::new(0), VmId::new(90), small_req(2))
            .unwrap();
        c.allocate(NodeId::new(1), VmId::new(91), small_req(10))
            .unwrap();
        // Free: node0 = 14, node1 = 6, node2 = 16.
        assert_eq!(c.worst_fit(small_req(4)), Some(NodeId::new(2)));
        c.allocate(NodeId::new(2), VmId::new(92), small_req(4))
            .unwrap();
        // Free: node0 = 14, node1 = 6, node2 = 12.
        assert_eq!(c.worst_fit(small_req(4)), Some(NodeId::new(0)));
    }

    #[test]
    fn ram_bound_machines_skipped_by_fit_queries() {
        let mut c = Cluster::homogeneous(2, MachineSpec::testbed());
        // node0: plenty of CPUs, almost no RAM left.
        c.allocate(
            NodeId::new(0),
            VmId::new(90),
            ResourceRequest::new(1, ByteSize::gib(31)),
        )
        .unwrap();
        let req = ResourceRequest::new(2, ByteSize::gib(4));
        assert_eq!(c.best_fit(req), Some(NodeId::new(1)));
        assert_eq!(c.first_fit(req), Some(NodeId::new(1)));
        assert_eq!(c.worst_fit(req), Some(NodeId::new(1)));
    }

    #[test]
    fn fragment_iteration_orders() {
        let mut c = Cluster::homogeneous(4, MachineSpec::testbed());
        c.allocate(NodeId::new(0), VmId::new(90), small_req(14))
            .unwrap(); // 2 free
        c.allocate(NodeId::new(1), VmId::new(91), small_req(13))
            .unwrap(); // 3 free
        c.allocate(NodeId::new(2), VmId::new(92), small_req(16))
            .unwrap(); // full
        c.allocate(NodeId::new(3), VmId::new(93), small_req(15))
            .unwrap(); // 1 free
        let asc: Vec<u32> = c.fragments_ascending().map(|n| n.0).collect();
        assert_eq!(asc, vec![3, 0, 1]);
        let desc: Vec<u32> = c.fragments_descending().map(|n| n.0).collect();
        assert_eq!(desc, vec![1, 0, 3]);
    }
}
