//! Physical cluster model: machines, resource inventories, allocations.
//!
//! The paper's testbed is a rack of identical servers (Xeon E5-2620 v4,
//! 32 GiB RAM, one ConnectX-4 NIC, one SATA SSD) behind an InfiniBand
//! switch. This crate tracks *who owns what*: how many pCPUs and how much
//! RAM of each machine is allocated to which VM slice, what devices each
//! machine hosts, and how fragmented the free capacity is — the quantity
//! the Aggregate VM exists to harvest.
//!
//! It deliberately knows nothing about hypervisors or scheduling policy;
//! the `scheduler` crate implements BFF/FragBFF on top of these primitives.

#![warn(missing_docs)]

pub mod fragmentation;
pub mod machine;

pub use fragmentation::FragmentationReport;
pub use machine::{Cluster, DeviceKind, Machine, MachineSpec, ResourceRequest};

sim_core::define_id!(
    /// Identifier of a VM known to the cluster allocator.
    VmId,
    "vm"
);

sim_core::define_id!(
    /// Identifier of one slice of a (possibly aggregate) VM.
    SliceId,
    "slice"
);
