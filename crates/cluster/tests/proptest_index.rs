//! Property tests for the cluster's incremental bookkeeping: the free-CPU
//! bucket index, the VM → nodes ledger, and the O(1) capacity counters
//! must stay consistent with a fresh scan under arbitrary interleavings
//! of arrivals, departures, and slice migrations — the op mix the
//! data-center simulator drives at scale.

use std::cmp::Reverse;

use cluster::{Cluster, MachineSpec, ResourceRequest, VmId};
use comm::NodeId;
use proptest::prelude::*;
use sim_core::units::ByteSize;

const GIB: u64 = 1 << 30;

/// One scripted operation: `(opcode, selector, cpus, shape)`.
type Op = (u32, u32, u32, u32);

fn request(cpus: u32, shape: u32) -> ResourceRequest {
    // Shapes: 1, 1.25 and 1.5 GiB per vCPU; the uneven ones exercise the
    // RAM dimension of the index ordering.
    let ram = u64::from(cpus) * GIB * u64::from(4 + shape % 3) / 4;
    ResourceRequest::new(cpus, ByteSize::bytes(ram))
}

/// Naive re-derivations of the three fit queries, straight off a full
/// machine scan.
fn naive_best_fit(c: &Cluster, req: ResourceRequest) -> Option<NodeId> {
    c.machines()
        .filter(|(_, m)| m.fits(req))
        .min_by_key(|(n, m)| (m.free_cpus() - req.cpus, m.free_ram().as_u64(), n.index()))
        .map(|(n, _)| n)
}

fn naive_first_fit(c: &Cluster, req: ResourceRequest) -> Option<NodeId> {
    c.machines().find(|(_, m)| m.fits(req)).map(|(n, _)| n)
}

fn naive_worst_fit(c: &Cluster, req: ResourceRequest) -> Option<NodeId> {
    c.machines()
        .filter(|(_, m)| m.fits(req))
        .min_by_key(|(n, m)| (Reverse(m.free_cpus()), m.free_ram().as_u64(), n.index()))
        .map(|(n, _)| n)
}

/// Replays an op script against a fresh cluster, asserting the ledger
/// invariants after every step. Returns a digest of the final state.
fn replay(nodes: usize, ops: &[Op], audit: bool) -> Result<String, TestCaseError> {
    let mut c = Cluster::homogeneous(nodes, MachineSpec::testbed());
    let capacity_cpus = u64::from(MachineSpec::testbed().cpus) * nodes as u64;
    let capacity_ram = MachineSpec::testbed().ram.as_u64() * nodes as u64;
    // Shadow model: what we believe is allocated, per live VM.
    let mut live: Vec<(VmId, u64, u64)> = Vec::new(); // (vm, cpus, ram)
    let mut next_vm = 0u32;
    for &(opcode, selector, cpus, shape) in ops {
        match opcode % 4 {
            // Arrival: place via best fit if anything fits.
            0 | 1 => {
                let req = request(cpus % 8 + 1, shape);
                if let Some(node) = c.best_fit(req) {
                    let vm = VmId::new(next_vm);
                    next_vm += 1;
                    c.allocate(node, vm, req).expect("best_fit said it fits");
                    live.push((vm, u64::from(req.cpus), req.ram.as_u64()));
                }
            }
            // Departure: release a live VM everywhere.
            2 => {
                if !live.is_empty() {
                    let (vm, _, _) = live.swap_remove(selector as usize % live.len());
                    c.release_vm(vm);
                }
            }
            // Migration: move part of a live VM's slice to the emptiest
            // machine that can take it.
            3 => {
                if !live.is_empty() {
                    let (vm, _, _) = live[selector as usize % live.len()];
                    let held = c.nodes_of(vm);
                    if let Some(&from) = held.first() {
                        let alloc = c.machine(from).allocation_of(vm).expect("ledger");
                        let move_cpus = cpus % alloc.cpus + 1;
                        let move_ram =
                            alloc.ram.as_u64() * u64::from(move_cpus) / u64::from(alloc.cpus);
                        let part = ResourceRequest::new(move_cpus, ByteSize::bytes(move_ram));
                        if let Some(to) = c.worst_fit(part) {
                            if to != from {
                                c.migrate(vm, from, to, part)
                                    .expect("worst_fit said it fits");
                            }
                        }
                    }
                }
            }
            _ => unreachable!(),
        }
        if audit {
            // Index, ledger, and counters agree with a fresh scan.
            c.check_invariants();
            // Conservation: allocations on machines equal the shadow model,
            // and nothing is created or destroyed by migrations.
            let want_cpus: u64 = live.iter().map(|&(_, cp, _)| cp).sum();
            let want_ram: u64 = live.iter().map(|&(_, _, r)| r).sum();
            let used_cpus: u64 = c.machines().map(|(_, m)| u64::from(m.used_cpus())).sum();
            let used_ram: u64 = c.machines().map(|(_, m)| m.used_ram().as_u64()).sum();
            prop_assert_eq!(used_cpus, want_cpus, "CPU conservation violated");
            prop_assert_eq!(used_ram, want_ram, "RAM conservation violated");
            prop_assert_eq!(
                u64::from(c.total_free_cpus()),
                capacity_cpus - want_cpus,
                "O(1) free counter drifted"
            );
            prop_assert!(used_ram <= capacity_ram);
            // The indexed fit queries match a naive scan exactly.
            let probe = request(cpus % 8 + 1, shape + 1);
            prop_assert_eq!(c.best_fit(probe), naive_best_fit(&c, probe));
            prop_assert_eq!(c.first_fit(probe), naive_first_fit(&c, probe));
            prop_assert_eq!(c.worst_fit(probe), naive_worst_fit(&c, probe));
        }
    }
    // Digest: the exact final allocation state.
    let mut digest = String::new();
    for (n, m) in c.machines() {
        digest.push_str(&format!(
            "{}:{}c{}b;",
            n.index(),
            m.used_cpus(),
            m.used_ram().as_u64()
        ));
    }
    Ok(digest)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary arrival/departure/migration sequences conserve resources,
    /// never over-allocate, and keep every incremental structure equal to
    /// a fresh scan.
    #[test]
    fn op_sequences_keep_ledger_consistent(
        nodes in 2usize..7,
        ops in proptest::collection::vec((0u32..4, any_selector(), 0u32..16, 0u32..3), 1..60),
    ) {
        replay(nodes, &ops, true)?;
    }

    /// Replaying the same script twice produces byte-identical state.
    #[test]
    fn replay_is_deterministic(
        nodes in 2usize..7,
        ops in proptest::collection::vec((0u32..4, any_selector(), 0u32..16, 0u32..3), 1..60),
    ) {
        let a = replay(nodes, &ops, false)?;
        let b = replay(nodes, &ops, false)?;
        prop_assert_eq!(a, b);
    }
}

fn any_selector() -> std::ops::Range<u32> {
    0u32..1_000_000
}
