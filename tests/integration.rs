//! Cross-crate integration tests: determinism, migration under load,
//! checkpointing, and scheduler-driven replay.

use cluster::MachineSpec;
use comm::{LinkProfile, NodeId};
use fragvisor::{checkpoint, restore, scenarios, Distribution, HypervisorProfile, VcpuId};
use hypervisor::{MemoryConfig, Placement};
use scheduler::{ArrivalTrace, ConsolidationPolicy, DatacenterSim};
use sim_core::rng::DetRng;
use sim_core::time::SimTime;
use sim_core::units::{Bandwidth, ByteSize};
use workloads::{LempConfig, NpbClass, NpbKernel};

/// Two runs with the same seed must agree bit-for-bit on every statistic.
#[test]
fn full_stack_determinism() {
    let run = || {
        let mut sim = scenarios::lemp(
            LempConfig::paper(100, 3),
            HypervisorProfile::fragvisor(),
            &Distribution::OneVcpuPerNode,
            15,
        );
        let t = sim.run_client();
        (
            t,
            sim.world.stats.completed_requests,
            sim.world.stats.request_latency.mean(),
            sim.world.mem.dsm.stats().total_faults(),
            sim.world.fabric.messages_sent(),
        )
    };
    assert_eq!(run(), run());
}

/// Migrating vCPUs mid-service must not lose requests, and consolidation
/// must improve latency.
#[test]
fn migration_under_load_is_transparent() {
    let mut sim = scenarios::lemp(
        LempConfig::paper(100, 4),
        HypervisorProfile::fragvisor(),
        &Distribution::OneVcpuPerNode,
        60,
    );
    // Serve a while spread out, then consolidate everything onto node 0.
    sim.run_until(SimTime::from_secs(1));
    let before = sim.world.stats.completed_requests;
    assert!(before > 0, "some requests should have completed");
    let moved = fragvisor::aggregate::consolidate_onto(&mut sim, NodeId::new(0));
    assert_eq!(moved, 3);
    sim.run_client();
    assert_eq!(sim.world.stats.completed_requests, 60, "no lost requests");
    // Latency after consolidation should not be worse than while spread
    // (same node = no socket streaming tax).
    let points = sim.world.stats.latency_series.points();
    let spread: Vec<f64> = points
        .iter()
        .filter(|(at, _)| *at <= SimTime::from_secs(1))
        .map(|&(_, v)| v)
        .collect();
    let consolidated: Vec<f64> = points
        .iter()
        .filter(|(at, _)| *at > SimTime::from_secs(1))
        .map(|&(_, v)| v)
        .collect();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        avg(&consolidated) <= avg(&spread) * 1.05,
        "consolidated {:.1}ms vs spread {:.1}ms",
        avg(&consolidated),
        avg(&spread)
    );
}

/// Checkpoint + restore round trip preserves footprint accounting and the
/// disk-bound behaviour.
#[test]
fn checkpoint_restore_roundtrip() {
    let profile = HypervisorProfile::fragvisor();
    let mut mem = MemoryConfig::new(ByteSize::gib(12))
        .vcpus(4)
        .nodes(4)
        .build(&profile);
    for n in 0..4 {
        let _ = mem.register_resident_dataset(&format!("d{n}"), ByteSize::gib(2), NodeId::new(n));
    }
    let disk = Bandwidth::mb_per_sec(500.0);
    let link = LinkProfile::infiniband_56g();
    let report = checkpoint(&mem, NodeId::new(0), disk, link);
    assert_eq!(
        report.local_pages + report.remote_pages,
        mem.dsm.total_pages()
    );
    assert!(report.remote_pages >= ByteSize::gib(6).pages_4k());
    // Restore onto the same 4 slices: also disk-bound.
    let t = restore(report.bytes, 4, disk, link);
    let expected = disk.transfer_time(report.bytes);
    assert!(t >= expected);
    assert!(t < expected + SimTime::from_millis(10));
}

/// The scheduler's placement decisions replay cleanly on a live VM:
/// every commanded migration is applied and the final placement matches.
#[test]
fn scheduler_commands_apply_to_live_vm() {
    // Find a seed whose first 4-vCPU aggregate VM consolidates.
    let mut chosen = None;
    for seed in 0..32u64 {
        let mut rng = DetRng::new(seed);
        let trace =
            ArrivalTrace::generate(&mut rng, 80, SimTime::from_secs(1), SimTime::from_secs(30));
        let report = DatacenterSim::new(
            4,
            MachineSpec::fig14(),
            ConsolidationPolicy::MinNodes,
            trace,
        )
        .observe_first_aggregate(4)
        .run();
        if report.observed_vm.is_some() && report.migrations > 0 {
            chosen = Some(report);
            break;
        }
    }
    let report = chosen.expect("a migrating aggregate VM within 32 seeds");

    // Replay on a live compute VM: apply each epoch's placement.
    let epochs: Vec<(SimTime, Vec<u32>)> = {
        let mut out: Vec<(SimTime, Vec<u32>)> = Vec::new();
        for (at, counts) in &report.observed_slices {
            if counts.iter().sum::<u32>() == 0 {
                if !out.is_empty() {
                    break;
                }
                continue;
            }
            if out.last().map(|(_, c)| c) != Some(counts) {
                out.push((*at, counts.clone()));
            }
        }
        out
    };
    if epochs.len() < 2 {
        return; // No placement change to replay for this seed set.
    }
    let initial = &epochs[0].1;
    let mut placements = Vec::new();
    for (n, &c) in initial.iter().enumerate() {
        for _ in 0..c {
            placements.push(Placement::new(n as u32, placements.len() as u32));
        }
    }
    let mut sim = scenarios::npb_multiprocess(
        NpbKernel::Lu,
        NpbClass::SimLarge,
        4,
        HypervisorProfile::fragvisor(),
        &Distribution::Custom(placements),
    );
    let mut nodes_of: Vec<u32> = initial
        .iter()
        .enumerate()
        .flat_map(|(n, &c)| std::iter::repeat_n(n as u32, c as usize))
        .collect();
    // Replay the epochs spaced evenly across the first simulated second.
    // Spacing matters: commanding a vCPU that is still mid-migration is
    // (correctly) refused by the hypervisor, so each epoch must leave the
    // previous one's migrations time to complete.
    let last = (epochs.len() - 1) as u64;
    for (i, (_, counts)) in epochs.iter().enumerate().skip(1) {
        sim.run_until(SimTime::from_millis(i as u64 * 1000 / last));
        // Greedy reassignment.
        let mut have = [0u32; 4];
        for &n in &nodes_of {
            have[n as usize] += 1;
        }
        for (v, slot) in nodes_of.iter_mut().enumerate() {
            let n = *slot as usize;
            if have[n] > counts[n] {
                if let Some(dst) = (0..4).find(|&d| have[d] < counts[d]) {
                    have[n] -= 1;
                    have[dst] += 1;
                    *slot = dst as u32;
                    assert!(sim
                        .migrate_vcpu(VcpuId::from_usize(v), Placement::new(dst as u32, v as u32)));
                }
            }
        }
    }
    let _ = sim.run();
    // Final placement matches the last epoch's counts.
    let mut got = [0u32; 4];
    for v in 0..4 {
        got[sim.world.placement_of(VcpuId::from_usize(v)).node.index()] += 1;
    }
    let want: Vec<u32> = epochs.last().unwrap().1.clone();
    assert_eq!(got.to_vec(), want);
    assert!(sim.world.stats.migrations > 0);
}

/// A traced FragVisor end-to-end run — requests, DSM faults, fabric
/// traffic, migrations — produces events from every instrumented layer and
/// passes the invariant auditor clean.
#[test]
fn traced_end_to_end_run_is_audit_clean() {
    use sim_core::trace::TraceEvent;
    let mut sim = scenarios::lemp(
        LempConfig::paper(100, 3),
        HypervisorProfile::fragvisor(),
        &Distribution::OneVcpuPerNode,
        20,
    );
    let tracer = sim.enable_tracing(1 << 16);
    sim.run_until(SimTime::from_secs(1));
    // Consolidate mid-run so the trace also carries migration lifecycles.
    let moved = fragvisor::aggregate::consolidate_onto(&mut sim, NodeId::new(0));
    assert!(moved > 0);
    sim.run_client();

    let events = tracer.snapshot();
    assert!(!events.is_empty(), "tracing enabled but no events captured");
    let has = |f: &dyn Fn(&TraceEvent) -> bool| events.iter().any(f);
    assert!(
        has(&|e| matches!(e, TraceEvent::DsmFault { .. } | TraceEvent::DsmHit { .. })),
        "no DSM events in trace"
    );
    assert!(
        has(&|e| matches!(e, TraceEvent::FabricSend { .. })),
        "no fabric events in trace"
    );
    assert!(
        has(&|e| matches!(e, TraceEvent::CpuAdd { .. } | TraceEvent::CpuDone { .. })),
        "no CPU events in trace"
    );
    assert!(
        has(&|e| matches!(e, TraceEvent::VcpuMigrateStart { .. })),
        "no migration events in trace"
    );
    sim_core::audit::assert_clean(&events);

    // The JSONL export is line-per-event and well-formed enough to count.
    let jsonl = tracer.to_jsonl();
    assert_eq!(jsonl.lines().count(), events.len());
    assert!(jsonl
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));
}

/// Deliberately corrupting the DSM directory (granting a second node
/// exclusivity without invalidating the first) must be caught by the
/// trace auditor.
#[test]
fn corrupted_dsm_directory_is_reported() {
    use dsm::{Access, PageClass, PageId};
    let mut sim = scenarios::lemp(
        LempConfig::paper(100, 2),
        HypervisorProfile::fragvisor(),
        &Distribution::OneVcpuPerNode,
        5,
    );
    let tracer = sim.enable_tracing(1 << 14);
    sim.run_until(SimTime::from_millis(100));

    // Set up a page shared by nodes 0 and 1, then corrupt the directory:
    // node 1 is handed exclusivity while node 0 still holds a valid copy.
    let dsm = &mut sim.world.mem.dsm;
    let page = PageId::new(u32::MAX - 7); // Outside any allocated region.
    dsm.ensure_page(page, NodeId::new(0), PageClass::AppShared);
    let _ = dsm.access(NodeId::new(1), page, Access::Read);
    dsm.corrupt_grant_exclusive(page, NodeId::new(1));

    let violations = sim_core::audit::audit(&tracer.snapshot());
    assert!(
        violations
            .iter()
            .any(|v| v.rule == "dsm-second-exclusive-owner"),
        "auditor missed the injected coherence violation: {violations:?}"
    );
}

/// Applying a fenced node's write as if the epoch fence were not checked
/// (the split-brain a partition would cause without fencing) must be
/// caught by the auditor — both as a stale-epoch mutation and as a
/// second exclusive owner.
#[test]
fn unfenced_stale_epoch_write_is_reported() {
    use dsm::{Access, PageClass, PageId};
    let mut sim = scenarios::lemp(
        LempConfig::paper(100, 2),
        HypervisorProfile::fragvisor(),
        &Distribution::OneVcpuPerNode,
        5,
    );
    let tracer = sim.enable_tracing(1 << 14);
    sim.run_until(SimTime::from_millis(100));

    // Nodes 0 and 1 share a page; node 1 is then fenced at a new epoch
    // (as the detector would after declaring it dead across a partition).
    let dsm = &mut sim.world.mem.dsm;
    let page = PageId::new(u32::MAX - 11); // Outside any allocated region.
    dsm.ensure_page(page, NodeId::new(0), PageClass::AppShared);
    let _ = dsm.access(NodeId::new(1), page, Access::Read);
    dsm.bump_epoch(NodeId::new(1));
    // The write the fence should have blocked is applied anyway: two
    // nodes now believe they hold exclusive, writable data.
    dsm.corrupt_stale_epoch_write(page, NodeId::new(1));

    let violations = sim_core::audit::audit(&tracer.snapshot());
    assert!(
        violations.iter().any(|v| v.rule == "epoch-stale-mutation"),
        "auditor missed the unfenced stale-epoch write: {violations:?}"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.rule == "dsm-second-exclusive-owner"),
        "auditor missed the split-brain double owner: {violations:?}"
    );
}

/// The umbrella crate re-exports compose: giantvm's profile runs through
/// fragvisor's scenario builders.
#[test]
fn crates_compose_via_umbrella() {
    let mut sim = scenarios::npb_multiprocess(
        NpbKernel::Mg,
        NpbClass::Sim,
        2,
        giantvm::profile(),
        &Distribution::OneVcpuPerNode,
    );
    assert!(sim.run() > SimTime::ZERO);
    let _ = aggregate_vm::fragvisor::profile();
}
