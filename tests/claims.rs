//! End-to-end checks of the paper's major claims (§1, §A.9).
//!
//! These are the workspace's "does the reproduction actually reproduce"
//! tests: each runs the relevant experiment at reduced scale and asserts
//! the *shape* the paper reports — who wins and roughly by how much.

use fragvisor::{scenarios, Distribution, HypervisorProfile};
use sim_core::time::SimTime;
use sim_core::units::ByteSize;
use virtio::IoPathMode;
use workloads::{LempConfig, NpbClass, NpbKernel};

fn lemp_tput(processing_ms: u64, profile: HypervisorProfile, dist: &Distribution) -> f64 {
    let mut sim = scenarios::lemp(LempConfig::paper(processing_ms, 4), profile, dist, 20);
    let t = sim.run_client();
    sim.world.stats.requests_per_sec(t)
}

/// C1: for long requests, FragVisor's LEMP throughput beats GiantVM's
/// (and the reverse holds for short requests).
#[test]
fn c1_lemp_long_requests_beat_giantvm() {
    let frag_long = lemp_tput(
        500,
        HypervisorProfile::fragvisor(),
        &Distribution::OneVcpuPerNode,
    );
    let giant_long = lemp_tput(
        500,
        HypervisorProfile::giantvm(),
        &Distribution::OneVcpuPerNode,
    );
    assert!(
        frag_long > giant_long * 1.1,
        "paper: 1.27x at 500ms; got {:.2}",
        frag_long / giant_long
    );
    let frag_short = lemp_tput(
        25,
        HypervisorProfile::fragvisor(),
        &Distribution::OneVcpuPerNode,
    );
    let giant_short = lemp_tput(
        25,
        HypervisorProfile::giantvm(),
        &Distribution::OneVcpuPerNode,
    );
    assert!(
        giant_short > frag_short,
        "paper: GiantVM wins short requests; frag={frag_short:.1} giant={giant_short:.1}"
    );
}

/// C2: FragVisor beats GiantVM in *every* phase of the serverless
/// pipeline.
#[test]
fn c2_faas_every_phase_faster() {
    let (mut frag, frag_phases) = scenarios::faas(
        4,
        1,
        HypervisorProfile::fragvisor(),
        &Distribution::OneVcpuPerNode,
    );
    let t_frag = frag.run();
    let (mut giant, giant_phases) = scenarios::faas(
        4,
        1,
        HypervisorProfile::giantvm(),
        &Distribution::OneVcpuPerNode,
    );
    let t_giant = giant.run();
    assert!(t_frag < t_giant, "overall: {t_frag} vs {t_giant}");
    // Compare average phase times.
    let avg = |phases: &[std::rc::Rc<std::cell::RefCell<Vec<workloads::FaasPhases>>>]| {
        let mut sums = [0.0f64; 3];
        let mut n = 0.0;
        for p in phases {
            for ph in p.borrow().iter() {
                sums[0] += ph.download.as_secs_f64();
                sums[1] += ph.extract.as_secs_f64();
                sums[2] += ph.detect.as_secs_f64();
                n += 1.0;
            }
        }
        sums.map(|s| s / n)
    };
    let f = avg(&frag_phases);
    let g = avg(&giant_phases);
    for (i, name) in ["download", "extract", "detect"].iter().enumerate() {
        assert!(
            f[i] < g[i],
            "{name}: fragvisor {:.1}ms vs giantvm {:.1}ms",
            f[i] * 1e3,
            g[i] * 1e3
        );
    }
}

/// C3: DSM-bypass keeps delegated I/O close to local; the DSM data path
/// does not.
#[test]
fn c3_dsm_bypass_offsets_distribution() {
    let latency = |node: u32, mode: IoPathMode| -> f64 {
        let profile = HypervisorProfile::fragvisor().with_io_mode("t", mode);
        let mut sim = scenarios::net_delegation_with(node, ByteSize::mib(2), 15, 1, true, profile);
        sim.run_client();
        sim.world.stats.request_latency.mean() / 1e6
    };
    let local = latency(0, IoPathMode::MultiqueueBypass);
    let bypass = latency(1, IoPathMode::MultiqueueBypass);
    let dsm_path = latency(1, IoPathMode::Multiqueue);
    // Bypass within 5% of local; the DSM path is substantially worse.
    assert!(
        bypass / local < 1.05,
        "bypass {bypass:.2}ms vs local {local:.2}ms"
    );
    assert!(
        dsm_path / bypass > 1.2,
        "dsm {dsm_path:.2}ms vs bypass {bypass:.2}ms"
    );
}

/// Headline: compute speedups up to ~3.9x vs overcommitment at 4 vCPUs.
#[test]
fn headline_compute_speedup() {
    let mut agg = scenarios::npb_multiprocess(
        NpbKernel::Ep,
        NpbClass::Sim,
        4,
        HypervisorProfile::fragvisor(),
        &Distribution::OneVcpuPerNode,
    );
    let t_agg = agg.run();
    let mut over = scenarios::npb_multiprocess(
        NpbKernel::Ep,
        NpbClass::Sim,
        4,
        HypervisorProfile::single_machine(),
        &Distribution::Packed { pcpus: 1 },
    );
    let t_over = over.run();
    let speedup = t_over.as_secs_f64() / t_agg.as_secs_f64();
    assert!((3.5..4.1).contains(&speedup), "EP speedup {speedup:.2}");
}

/// Headline: FragVisor up to ~2.5x over GiantVM on compute (IS is the
/// extreme case).
#[test]
fn headline_giantvm_compute_gap() {
    let run = |profile: HypervisorProfile| {
        let mut sim = scenarios::npb_multiprocess(
            NpbKernel::Is,
            NpbClass::Sim,
            4,
            profile,
            &Distribution::OneVcpuPerNode,
        );
        sim.run()
    };
    let ratio = run(HypervisorProfile::giantvm()).as_secs_f64()
        / run(HypervisorProfile::fragvisor()).as_secs_f64();
    assert!(
        (1.5..3.5).contains(&ratio),
        "IS FragVisor-vs-GiantVM ratio {ratio:.2}"
    );
}

/// The SLO story of Figure 1: low-sharing workloads are barely penalized
/// by distribution; high-sharing ones are.
#[test]
fn figure1_slo_depends_on_sharing() {
    let single = Distribution::Custom((0..4).map(|i| fragvisor::Placement::new(0, i)).collect());
    let ratio_for = |share: f64| -> f64 {
        let total = SimTime::from_millis(10);
        let mut dsm_sim = scenarios::npb_omp(
            share,
            4,
            total,
            HypervisorProfile::fragvisor(),
            &Distribution::OneVcpuPerNode,
        );
        let t_dsm = dsm_sim.run();
        let mut single_sim = scenarios::npb_omp(
            share,
            4,
            total,
            HypervisorProfile::single_machine(),
            &single,
        );
        let t_single = single_sim.run();
        t_single.as_secs_f64() / t_dsm.as_secs_f64()
    };
    let low = ratio_for(0.01);
    let high = ratio_for(0.7);
    assert!(low > 0.95, "low sharing should be near 1.0: {low:.2}");
    assert!(high < 0.7, "high sharing should be penalized: {high:.2}");
}
